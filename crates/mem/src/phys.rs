//! Physical addresses, the Figure 4 memory layout, and the sparse
//! byte-level backing store.
//!
//! Stramash-QEMU allocates guest memory on a per-host basis so that "any
//! memory operation from a single guest will be reflected in others"
//! (§7.1). The reproduction keeps one [`SparseMemory`] shared by both
//! domains — every byte written by one kernel instance is immediately
//! visible to the other, exactly like cache-coherent shared DRAM.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use stramash_sim::DomainId;

/// A physical memory address.
///
/// ```
/// use stramash_mem::PhysAddr;
/// let a = PhysAddr::new(0x1000);
/// assert_eq!(a.offset(0x20).raw(), 0x1020);
/// assert_eq!(a.align_down(0x1000), a);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw address value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address plus `off` bytes.
    #[must_use]
    pub const fn offset(self, off: u64) -> PhysAddr {
        PhysAddr(self.0 + off)
    }

    /// Rounds down to a multiple of `align` (a power of two).
    #[must_use]
    pub const fn align_down(self, align: u64) -> PhysAddr {
        PhysAddr(self.0 & !(align - 1))
    }

    /// Whether the address is a multiple of `align` (a power of two).
    #[must_use]
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0 & (align - 1) == 0
    }

    /// The physical frame number for 4 KiB pages.
    #[must_use]
    pub const fn frame(self) -> u64 {
        self.0 >> 12
    }

    /// The cache-line address for the given line size.
    #[must_use]
    pub const fn line(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

/// Ownership attribution of a physical region (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Memory attached to (owned by) one domain's memory controller.
    DomainLocal(DomainId),
    /// The dynamically shared memory pool (4–8 GB in Figure 4).
    Pool {
        /// Which domain's controller physically hosts this half of the
        /// pool. In the *Separated* model the pool halves behave like
        /// ordinary local memory of their host; in the *Shared* model
        /// they are remote-shared for everyone (§8.1).
        host: DomainId,
    },
}

/// A contiguous physical region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    /// First byte.
    pub start: PhysAddr,
    /// Length in bytes.
    pub len: u64,
    /// Ownership attribution.
    pub kind: RegionKind,
}

impl MemRegion {
    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr.raw() >= self.start.raw() && addr.raw() < self.start.raw() + self.len
    }

    /// One past the last byte.
    #[must_use]
    pub fn end(&self) -> PhysAddr {
        self.start.offset(self.len)
    }
}

/// The paper's 8 GB physical layout (Figure 4 and §8.1):
///
/// | range | attribution |
/// |---|---|
/// | 0 – 1.5 GB | x86 local (x86 instance boots at 0x0) |
/// | 1.5 – 3 GB | Arm local (Arm instance boots at 0xA000_0000) |
/// | 3 – 4 GB | hole (MMIO / firmware) |
/// | 4 – 6 GB | pool, hosted by x86 |
/// | 6 – 8 GB | pool, hosted by Arm |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysLayout {
    regions: Vec<MemRegion>,
}

pub(crate) const GB: u64 = 1 << 30;

impl PhysLayout {
    /// The Figure 4 layout.
    #[must_use]
    pub fn paper_default() -> Self {
        let half_gb = GB / 2;
        PhysLayout {
            regions: vec![
                MemRegion {
                    start: PhysAddr::new(0),
                    len: GB + half_gb,
                    kind: RegionKind::DomainLocal(DomainId::X86),
                },
                MemRegion {
                    start: PhysAddr::new(GB + half_gb),
                    len: GB + half_gb,
                    kind: RegionKind::DomainLocal(DomainId::ARM),
                },
                MemRegion {
                    start: PhysAddr::new(4 * GB),
                    len: 2 * GB,
                    kind: RegionKind::Pool { host: DomainId::X86 },
                },
                MemRegion {
                    start: PhysAddr::new(6 * GB),
                    len: 2 * GB,
                    kind: RegionKind::Pool { host: DomainId::ARM },
                },
            ],
        }
    }

    /// All regions in address order.
    #[must_use]
    pub fn regions(&self) -> &[MemRegion] {
        &self.regions
    }

    /// The region containing `addr`, if any (the 3–4 GB hole has none).
    #[must_use]
    pub fn region_of(&self, addr: PhysAddr) -> Option<&MemRegion> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// The private (boot-time) region of a domain.
    #[must_use]
    pub fn private_region(&self, domain: DomainId) -> &MemRegion {
        self.regions
            .iter()
            .find(|r| r.kind == RegionKind::DomainLocal(domain))
            .expect("layout always has a private region per domain")
    }

    /// The pool half hosted by `domain`.
    #[must_use]
    pub fn pool_region(&self, domain: DomainId) -> &MemRegion {
        self.regions
            .iter()
            .find(|r| r.kind == RegionKind::Pool { host: domain })
            .expect("layout always has a pool half per domain")
    }

    /// Verifies that no two regions overlap (the §6.1 boot invariant:
    /// "kernel instances' memory areas do not overlap").
    #[must_use]
    pub fn is_disjoint(&self) -> bool {
        let mut sorted: Vec<&MemRegion> = self.regions.iter().collect();
        sorted.sort_by_key(|r| r.start);
        sorted.windows(2).all(|w| w[0].end().raw() <= w[1].start.raw())
    }
}

impl Default for PhysLayout {
    fn default() -> Self {
        PhysLayout::paper_default()
    }
}

const CHUNK_SHIFT: u32 = 16; // 64 KiB chunks
const CHUNK_SIZE: usize = 1 << CHUNK_SHIFT;

/// The cursor value meaning "no chunk cached". `u64::MAX` can never be
/// a real chunk number (chunk numbers are addresses shifted right).
const NO_CHUNK: u64 = u64::MAX;

/// Sparse byte-addressable physical memory shared by both domains.
///
/// Chunks materialise on first write; reads of untouched memory return
/// zeroes, matching freshly-zeroed DRAM handed out by the allocators.
/// Storage is a hash index over a chunk arena plus a one-entry cursor
/// memoising the last chunk touched, so streaming access (the common
/// case: sequential lines within one 64 KiB chunk) skips the hash probe
/// entirely.
#[derive(Debug)]
pub struct SparseMemory {
    index: HashMap<u64, u32>,
    arena: Vec<Box<[u8; CHUNK_SIZE]>>,
    /// `(chunk number, arena slot)` of the most recently touched chunk.
    cursor: Cell<(u64, u32)>,
}

impl Default for SparseMemory {
    fn default() -> Self {
        // The cursor must start *invalid*: `(0, 0)` would claim chunk 0
        // lives at slot 0 of a still-empty arena.
        SparseMemory {
            index: HashMap::new(),
            arena: Vec::new(),
            cursor: Cell::new((NO_CHUNK, 0)),
        }
    }
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Number of 64 KiB chunks currently materialised.
    #[must_use]
    pub fn resident_chunks(&self) -> usize {
        self.arena.len()
    }

    /// The arena slot holding `chunk`, consulting the cursor first.
    #[inline]
    fn slot_of(&self, chunk: u64) -> Option<u32> {
        let (c, s) = self.cursor.get();
        if c == chunk {
            return Some(s);
        }
        let s = *self.index.get(&chunk)?;
        self.cursor.set((chunk, s));
        Some(s)
    }

    /// The arena slot holding `chunk`, materialising it if absent.
    fn slot_of_mut(&mut self, chunk: u64) -> u32 {
        if let Some(s) = self.slot_of(chunk) {
            return s;
        }
        let s = u32::try_from(self.arena.len()).expect("chunk arena overflow");
        self.arena.push(Box::new([0u8; CHUNK_SIZE]));
        self.index.insert(chunk, s);
        self.cursor.set((chunk, s));
        s
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut pos = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let chunk_idx = pos >> CHUNK_SHIFT;
            let off = (pos as usize) & (CHUNK_SIZE - 1);
            let n = (CHUNK_SIZE - off).min(buf.len() - done);
            match self.slot_of(chunk_idx) {
                Some(s) => {
                    buf[done..done + n].copy_from_slice(&self.arena[s as usize][off..off + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pos += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) {
        let mut pos = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let chunk_idx = pos >> CHUNK_SHIFT;
            let off = (pos as usize) & (CHUNK_SIZE - 1);
            let n = (CHUNK_SIZE - off).min(buf.len() - done);
            let slot = self.slot_of_mut(chunk_idx);
            self.arena[slot as usize][off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let pos = addr.raw();
        let off = (pos as usize) & (CHUNK_SIZE - 1);
        if off <= CHUNK_SIZE - 8 {
            // Word lies within one chunk: read straight out of the
            // arena (cursor hit in the streaming common case).
            return match self.slot_of(pos >> CHUNK_SHIFT) {
                Some(s) => {
                    let b: [u8; 8] =
                        self.arena[s as usize][off..off + 8].try_into().expect("8-byte slice");
                    u64::from_le_bytes(b)
                }
                None => 0,
            };
        }
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        let pos = addr.raw();
        let off = (pos as usize) & (CHUNK_SIZE - 1);
        if off <= CHUNK_SIZE - 8 {
            let slot = self.slot_of_mut(pos >> CHUNK_SHIFT);
            self.arena[slot as usize][off..off + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads `words.len()` consecutive little-endian `u64`s starting at
    /// `addr` (8-byte aligned): the chunk is resolved once per run, not
    /// once per word. A run never crosses a chunk boundary when the
    /// caller keeps it inside one page, but split handling is kept for
    /// safety.
    pub fn read_words(&self, addr: PhysAddr, words: &mut [u64]) {
        debug_assert!(addr.is_aligned(8), "word run must be 8-byte aligned");
        let mut pos = addr.raw();
        let mut done = 0usize;
        while done < words.len() {
            let off = (pos as usize) & (CHUNK_SIZE - 1);
            let n = ((CHUNK_SIZE - off) / 8).min(words.len() - done);
            match self.slot_of(pos >> CHUNK_SHIFT) {
                Some(s) => {
                    let src = &self.arena[s as usize][off..off + n * 8];
                    for (w, c) in words[done..done + n].iter_mut().zip(src.chunks_exact(8)) {
                        *w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                    }
                }
                None => words[done..done + n].fill(0),
            }
            done += n;
            pos += (n * 8) as u64;
        }
    }

    /// Writes `words` as consecutive little-endian `u64`s starting at
    /// `addr` (8-byte aligned), resolving the chunk once per run.
    pub fn write_words(&mut self, addr: PhysAddr, words: &[u64]) {
        debug_assert!(addr.is_aligned(8), "word run must be 8-byte aligned");
        let mut pos = addr.raw();
        let mut done = 0usize;
        while done < words.len() {
            let off = (pos as usize) & (CHUNK_SIZE - 1);
            let n = ((CHUNK_SIZE - off) / 8).min(words.len() - done);
            let slot = self.slot_of_mut(pos >> CHUNK_SHIFT);
            let dst = &mut self.arena[slot as usize][off..off + n * 8];
            for (w, c) in words[done..done + n].iter().zip(dst.chunks_exact_mut(8)) {
                c.copy_from_slice(&w.to_le_bytes());
            }
            done += n;
            pos += (n * 8) as u64;
        }
    }

    /// Fills `len` bytes starting at `addr` with `byte`.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8) {
        // Chunk-at-a-time to avoid a giant temporary.
        let mut pos = addr.raw();
        let end = addr.raw() + len;
        let buf = [byte; 4096];
        while pos < end {
            let n = ((end - pos) as usize).min(buf.len());
            self.write(PhysAddr::new(pos), &buf[..n]);
            pos += n as u64;
        }
    }

    /// Copies `len` bytes from `src` to `dst` (the page-replication
    /// primitive used by the Popcorn DSM model).
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) {
        let mut buf = vec![0u8; len as usize];
        self.read(src, &mut buf);
        self.write(dst, &buf);
    }

    /// XORs the 64-bit word at `addr` with `mask` — the bit-flip
    /// primitive of the fault injector. Applying the same mask twice
    /// restores the original value, which is exactly how the ECC
    /// scrubber repairs a journalled single-bit flip.
    pub fn flip_bits(&mut self, addr: PhysAddr, mask: u64) {
        let word = self.read_u64(addr);
        self.write_u64(addr, word ^ mask);
    }

    /// Serializes every materialised chunk into a checkpoint section,
    /// in sorted chunk order so identical memory always yields an
    /// identical byte stream regardless of materialisation order.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x53_504d45); // "SPME"
        let mut chunks: Vec<u64> = self.index.keys().copied().collect();
        chunks.sort_unstable();
        e.u64(chunks.len() as u64);
        for c in chunks {
            e.u64(c);
            let slot = self.index[&c] as usize;
            e.bytes(&self.arena[slot][..]);
        }
    }

    /// Restores the memory contents from a checkpoint section,
    /// replacing everything currently materialised. The streaming
    /// cursor restarts invalid.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x53_504d45)?;
        let n = d.len()?;
        self.index.clear();
        self.arena.clear();
        self.cursor.set((NO_CHUNK, 0));
        for slot in 0..n {
            let chunk = d.u64()?;
            let data = d.bytes()?;
            let data: &[u8; CHUNK_SIZE] =
                data.try_into().map_err(|_| CheckpointError::Malformed("chunk size"))?;
            if self.index.insert(chunk, slot as u32).is_some() {
                return Err(CheckpointError::Malformed("duplicate memory chunk"));
            }
            self.arena.push(Box::new(*data));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_helpers() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.align_down(0x1000).raw(), 0x1000);
        assert!(!a.is_aligned(0x1000));
        assert!(PhysAddr::new(0x2000).is_aligned(0x1000));
        assert_eq!(a.frame(), 1);
        assert_eq!(PhysAddr::new(128).line(64), 2);
        assert_eq!(a.to_string(), "PA:0x1234");
    }

    #[test]
    fn paper_layout_matches_figure4() {
        let l = PhysLayout::paper_default();
        assert!(l.is_disjoint());
        // x86 boots at 0x0; Arm's private region starts at 1.5 GB
        // (its kernel loads at 0xA000_0000 inside it).
        assert_eq!(l.private_region(DomainId::X86).start.raw(), 0);
        assert_eq!(l.private_region(DomainId::ARM).start.raw(), 3 * GB / 2);
        assert!(l.private_region(DomainId::ARM).contains(PhysAddr::new(0xA000_0000)));
        // Shared pool spans 4–8 GB.
        assert_eq!(l.pool_region(DomainId::X86).start.raw(), 4 * GB);
        assert_eq!(l.pool_region(DomainId::ARM).end().raw(), 8 * GB);
    }

    #[test]
    fn region_lookup_and_hole() {
        let l = PhysLayout::paper_default();
        assert!(l.region_of(PhysAddr::new(0)).is_some());
        // The 3–4 GB hole belongs to no region.
        assert!(l.region_of(PhysAddr::new(3 * GB + 42)).is_none());
        let pool = l.region_of(PhysAddr::new(5 * GB)).unwrap();
        assert_eq!(pool.kind, RegionKind::Pool { host: DomainId::X86 });
    }

    #[test]
    fn sparse_memory_zero_initialised() {
        let m = SparseMemory::new();
        let mut buf = [0xffu8; 16];
        m.read(PhysAddr::new(0x5000), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_chunks(), 0);
    }

    #[test]
    fn sparse_memory_read_back() {
        let mut m = SparseMemory::new();
        m.write(PhysAddr::new(0x100), b"stramash");
        let mut buf = [0u8; 8];
        m.read(PhysAddr::new(0x100), &mut buf);
        assert_eq!(&buf, b"stramash");
    }

    #[test]
    fn sparse_memory_cross_chunk() {
        let mut m = SparseMemory::new();
        let boundary = (1u64 << CHUNK_SHIFT) - 4;
        let data: Vec<u8> = (0..16).collect();
        m.write(PhysAddr::new(boundary), &data);
        let mut buf = [0u8; 16];
        m.read(PhysAddr::new(boundary), &mut buf);
        assert_eq!(buf.as_slice(), data.as_slice());
        assert_eq!(m.resident_chunks(), 2);
    }

    #[test]
    fn sparse_memory_u64() {
        let mut m = SparseMemory::new();
        m.write_u64(PhysAddr::new(0x40), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr::new(0x40)), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn sparse_memory_fill_and_copy() {
        let mut m = SparseMemory::new();
        m.fill(PhysAddr::new(0x2000), 4096, 0xab);
        assert_eq!(m.read_u64(PhysAddr::new(0x2ff8)), 0xabab_abab_abab_abab);
        m.copy(PhysAddr::new(0x2000), PhysAddr::new(0x9000), 4096);
        assert_eq!(m.read_u64(PhysAddr::new(0x9000)), 0xabab_abab_abab_abab);
    }

    #[test]
    fn sparse_memory_word_runs() {
        let mut m = SparseMemory::new();
        let vals: Vec<u64> = (0..32).map(|i| i * 0x0101_0101).collect();
        m.write_words(PhysAddr::new(0x8000), &vals);
        let mut back = vec![0u64; 32];
        m.read_words(PhysAddr::new(0x8000), &mut back);
        assert_eq!(back, vals);
        // Agrees with the scalar accessors.
        assert_eq!(m.read_u64(PhysAddr::new(0x8008)), vals[1]);
        // Runs over untouched memory read zero.
        let mut zeros = vec![0xffu64; 4];
        m.read_words(PhysAddr::new(0x9_0000), &mut zeros);
        assert_eq!(zeros, vec![0u64; 4]);
        // A run crossing a chunk boundary still round-trips.
        let boundary = (1u64 << CHUNK_SHIFT) * 3 - 16;
        m.write_words(PhysAddr::new(boundary), &vals[..8]);
        let mut back = vec![0u64; 8];
        m.read_words(PhysAddr::new(boundary), &mut back);
        assert_eq!(back, &vals[..8]);
    }

    #[test]
    fn shared_store_is_visible_across_writers() {
        // Models §7.1: a write from one guest is reflected in the other.
        let mut m = SparseMemory::new();
        m.write_u64(PhysAddr::new(0x7000), 7); // "x86 writes"
        assert_eq!(m.read_u64(PhysAddr::new(0x7000)), 7); // "Arm reads"
    }
}
