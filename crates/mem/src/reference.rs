//! An independent reference memory-system model.
//!
//! The paper validates its cache plugin against the gem5 Ruby *MESI
//! Three Level* model (§9.1.3, Figure 8) and its icount timing against
//! native `perf` on real machines (§9.1.2, Figure 7). Neither gem5 nor
//! the Table 1 hardware is available here, so the reproduction preserves
//! the *methodology*: this module is a second, independently structured
//! simulator that the validation benches compare against the primary
//! [`crate::MemorySystem`] on identical access traces.
//!
//! Deliberate structural differences (mirroring how gem5 Ruby differs
//! from the QEMU plugin):
//!
//! * **tree pseudo-LRU** replacement instead of exact LRU,
//! * a **directory-based** MESI protocol with explicit sharer sets
//!   instead of peer-cache probing,
//! * a timing model with memory-level-parallelism overlap (a fraction of
//!   DRAM latency is hidden) and per-level pipeline bubbles.
//!
//! The two models therefore agree closely but not exactly — the benches
//! check the same error bounds the paper reports (< 5 % per-level hit
//! rate discrepancy; < 13 % cycle error, ≈ 4 % on average).

use crate::hwmodel::{AddressMap, MemClass};
use crate::phys::{PhysAddr, PhysLayout};
use crate::system::{Access, AccessKind};
use std::collections::HashMap;
use stramash_sim::config::CacheGeometry;
use stramash_sim::{Cycles, DomainId, DomainStats, SimConfig};

/// A set-associative cache with tree pseudo-LRU replacement (or exact
/// LRU when `exact_lru` is set — gem5's MESI\_Three\_Level manages its
/// LLC with LRU, so the reference L3 matches that configuration while
/// the upper levels keep PLRU).
#[derive(Debug, Clone)]
struct PlruCache {
    geo: CacheGeometry,
    sets: u64,
    /// `tags[set * ways + way]`; `u64::MAX` = empty.
    tags: Vec<u64>,
    /// One PLRU tree bitmask per set (supports up to 64 ways).
    plru: Vec<u64>,
    /// Exact-LRU mode: timestamps per way.
    exact_lru: bool,
    stamps: Vec<u64>,
    tick: u64,
}

const EMPTY: u64 = u64::MAX;

impl PlruCache {
    fn new(geo: CacheGeometry) -> Self {
        Self::with_policy(geo, false)
    }

    fn new_lru(geo: CacheGeometry) -> Self {
        Self::with_policy(geo, true)
    }

    fn with_policy(geo: CacheGeometry, exact_lru: bool) -> Self {
        let sets = geo.sets();
        let slots = (sets * geo.ways as u64) as usize;
        PlruCache {
            geo,
            sets,
            tags: vec![EMPTY; slots],
            plru: vec![0; sets as usize],
            exact_lru,
            stamps: vec![0; slots],
            tick: 0,
        }
    }

    fn base(&self, line: u64) -> usize {
        ((line % self.sets) * self.geo.ways as u64) as usize
    }

    /// Walks the PLRU tree bits to pick a victim way.
    fn plru_victim(&self, set: usize) -> usize {
        let ways = self.geo.ways as usize;
        let bits = self.plru[set];
        let mut node = 0usize; // heap-style tree over `ways` leaves
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let right = (bits >> node) & 1 == 1;
            let mid = lo + (hi - lo) / 2;
            if right {
                lo = mid;
            } else {
                hi = mid;
            }
            node = 2 * node + 1 + usize::from(right);
        }
        lo
    }

    /// Flips the tree bits along the path to `way` so it is protected.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let ways = self.geo.ways as usize;
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let right = way >= mid;
            // Point the bit *away* from the touched half.
            if right {
                self.plru[set] &= !(1 << node);
                lo = mid;
            } else {
                self.plru[set] |= 1 << node;
                hi = mid;
            }
            node = 2 * node + 1 + usize::from(right);
        }
    }

    /// Probe; on hit, protect the way. Returns hit.
    fn probe(&mut self, line: u64) -> bool {
        let base = self.base(line);
        let ways = self.geo.ways as usize;
        let set = (line % self.sets) as usize;
        self.tick += 1;
        for w in 0..ways {
            if self.tags[base + w] == line {
                self.plru_touch(set, w);
                self.stamps[base + w] = self.tick;
                return true;
            }
        }
        false
    }

    #[cfg(test)]
    fn contains(&self, line: u64) -> bool {
        let base = self.base(line);
        (0..self.geo.ways as usize).any(|w| self.tags[base + w] == line)
    }

    /// Insert; returns the evicted line, if any.
    fn insert(&mut self, line: u64) -> Option<u64> {
        let base = self.base(line);
        let ways = self.geo.ways as usize;
        let set = (line % self.sets) as usize;
        self.tick += 1;
        for w in 0..ways {
            if self.tags[base + w] == line {
                self.plru_touch(set, w);
                self.stamps[base + w] = self.tick;
                return None;
            }
        }
        for w in 0..ways {
            if self.tags[base + w] == EMPTY {
                self.tags[base + w] = line;
                self.plru_touch(set, w);
                self.stamps[base + w] = self.tick;
                return None;
            }
        }
        let victim = if self.exact_lru {
            (0..ways).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0")
        } else {
            self.plru_victim(set)
        };
        let evicted = self.tags[base + victim];
        self.tags[base + victim] = line;
        self.plru_touch(set, victim);
        self.stamps[base + victim] = self.tick;
        Some(evicted)
    }

    fn invalidate(&mut self, line: u64) {
        let base = self.base(line);
        for w in 0..self.geo.ways as usize {
            if self.tags[base + w] == line {
                self.tags[base + w] = EMPTY;
            }
        }
    }
}

/// Directory entry for one line: which domains share it and who owns a
/// dirty copy.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: u8,
    dirty_owner: Option<DomainId>,
}

/// The reference (gem5-Ruby-style) memory system.
#[derive(Debug)]
pub struct ReferenceSystem {
    cfg: SimConfig,
    map: AddressMap,
    l1i: [PlruCache; 2],
    l1d: [PlruCache; 2],
    l2: [PlruCache; 2],
    l3: [PlruCache; 2],
    directory: HashMap<u64, DirEntry>,
    stats: [DomainStats; 2],
    cycles: [Cycles; 2],
    line_bytes: u64,
    /// Fraction of DRAM latency hidden by memory-level parallelism.
    mlp_hidden: f64,
}

impl ReferenceSystem {
    /// Builds the reference model with the same geometry as the primary
    /// simulator would use for `cfg`.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let mk = |g: CacheGeometry| PlruCache::new(g);
        let line_bytes = cfg.domains[0].cache.line_bytes() as u64;
        let map = AddressMap::new(PhysLayout::paper_default(), cfg.hw_model);
        ReferenceSystem {
            l1i: [mk(cfg.domains[0].cache.l1i), mk(cfg.domains[1].cache.l1i)],
            l1d: [mk(cfg.domains[0].cache.l1d), mk(cfg.domains[1].cache.l1d)],
            l2: [mk(cfg.domains[0].cache.l2), mk(cfg.domains[1].cache.l2)],
            l3: [
                PlruCache::new_lru(cfg.domains[0].cache.l3),
                PlruCache::new_lru(cfg.domains[1].cache.l3),
            ],
            directory: HashMap::new(),
            stats: [DomainStats::new(), DomainStats::new()],
            cycles: [Cycles::ZERO, Cycles::ZERO],
            map,
            line_bytes,
            mlp_hidden: 0.08,
            cfg,
        }
    }

    /// Statistics of `domain`.
    #[must_use]
    pub fn stats(&self, domain: DomainId) -> &DomainStats {
        &self.stats[domain.index()]
    }

    /// Accumulated model time of `domain`.
    #[must_use]
    pub fn cycles(&self, domain: DomainId) -> Cycles {
        self.cycles[domain.index()]
    }

    /// Runs one access through the reference model.
    pub fn access(&mut self, domain: DomainId, addr: PhysAddr, access: Access, kind: AccessKind) {
        let di = domain.index();
        let line = addr.line(self.line_bytes);
        let lat = self.cfg.domains[di].latency;
        let is_write = access == Access::Write;
        if kind == AccessKind::Data {
            self.stats[di].mem_accesses += 1;
        }

        let l1 = match kind {
            AccessKind::Data => &mut self.l1d[di],
            AccessKind::Instruction => &mut self.l1i[di],
        };
        let l1_hit = l1.probe(line);
        match kind {
            AccessKind::Data => self.stats[di].l1d.record(l1_hit),
            AccessKind::Instruction => self.stats[di].l1i.record(l1_hit),
        }
        if l1_hit {
            self.cycles[di] += Cycles::new(lat.l1 as u64);
            if is_write {
                self.dir_write(domain, line);
            }
            return;
        }

        let l2_hit = self.l2[di].probe(line);
        self.stats[di].l2.record(l2_hit);
        if l2_hit {
            // +1 pipeline bubble vs the primary model.
            self.cycles[di] += Cycles::new(lat.l2 as u64 + 1);
            self.fill_l1(domain, line, kind);
            if is_write {
                self.dir_write(domain, line);
            }
            return;
        }

        let l3_hit = self.l3[di].probe(line);
        self.stats[di].l3.record(l3_hit);
        if l3_hit {
            self.cycles[di] += Cycles::new(lat.l3 as u64 + 2);
            // The L2 is non-inclusive (as in the primary model): its
            // evictions do not disturb the L1s.
            self.l2[di].insert(line);
            self.fill_l1(domain, line, kind);
            if is_write {
                self.dir_write(domain, line);
            }
            return;
        }

        // Full miss: directory transaction + DRAM with MLP overlap.
        let class = self.map.classify(domain, addr);
        match class {
            MemClass::Local => self.stats[di].local_mem_hits += 1,
            MemClass::Remote => self.stats[di].remote_mem_hits += 1,
            MemClass::RemoteShared => self.stats[di].remote_shared_mem_hits += 1,
        }
        let raw = self.map.dram_latency(&lat, class).raw() as f64;
        let mut cost = (raw * (1.0 - self.mlp_hidden)) as u64;

        let entry = self.directory.entry(line).or_default();
        let other_bit = 1u8 << domain.other().index();
        if entry.sharers & other_bit != 0 {
            if is_write {
                cost += self.cfg.cxl.snoop_invalidate as u64;
                entry.sharers &= !other_bit;
                entry.dirty_owner = None;
                self.stats[di].snoop_invalidations += 1;
                let oi = domain.other().index();
                self.l1d[oi].invalidate(line);
                self.l1i[oi].invalidate(line);
                self.l2[oi].invalidate(line);
                self.l3[oi].invalidate(line);
            } else {
                cost += self.cfg.cxl.snoop_data as u64;
                self.stats[di].snoop_data_hits += 1;
                if entry.dirty_owner == Some(domain.other()) {
                    entry.dirty_owner = None;
                }
            }
        }
        entry.sharers |= 1 << di;
        if is_write {
            entry.dirty_owner = Some(domain);
        }
        self.cycles[di] += Cycles::new(cost);

        if let Some(ev) = self.l3[di].insert(line) {
            self.l2[di].invalidate(ev);
            self.l1d[di].invalidate(ev);
            self.l1i[di].invalidate(ev);
            if let Some(e) = self.directory.get_mut(&ev) {
                e.sharers &= !(1 << di);
                if e.dirty_owner == Some(domain) {
                    // Writeback drain, with the same MLP overlap as
                    // demand traffic.
                    let wb = lat.mem as f64 / 2.0 * (1.0 - self.mlp_hidden);
                    self.cycles[di] += Cycles::new(wb as u64);
                    e.dirty_owner = None;
                }
            }
        }
        self.l2[di].insert(line);
        self.fill_l1(domain, line, kind);
    }

    fn fill_l1(&mut self, domain: DomainId, line: u64, kind: AccessKind) {
        let di = domain.index();
        match kind {
            AccessKind::Data => {
                self.l1d[di].insert(line);
            }
            AccessKind::Instruction => {
                self.l1i[di].insert(line);
            }
        }
    }

    /// Directory bookkeeping for a write that hit in-cache.
    fn dir_write(&mut self, domain: DomainId, line: u64) {
        let di = domain.index();
        let entry = self.directory.entry(line).or_default();
        let other_bit = 1u8 << domain.other().index();
        if entry.sharers & other_bit != 0 {
            entry.sharers &= !other_bit;
            self.cycles[di] += Cycles::new(self.cfg.cxl.snoop_invalidate as u64);
            self.stats[di].snoop_invalidations += 1;
            let oi = domain.other().index();
            self.l1d[oi].invalidate(line);
            self.l1i[oi].invalidate(line);
            self.l2[oi].invalidate(line);
            self.l3[oi].invalidate(line);
        }
        entry.dirty_owner = Some(domain);
        entry.sharers |= 1 << di;
    }
}

/// Relative error between two hit rates, as the paper reports for
/// Figure 8 (absolute difference in percentage points ÷ 100 works too;
/// we use absolute difference of the rates, in `[0, 1]`).
#[must_use]
pub fn hit_rate_discrepancy(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MemorySystem;
    use stramash_sim::rng::SimRng;
    use stramash_sim::HardwareModel;

    fn cfg() -> SimConfig {
        SimConfig::big_pair().with_hw_model(HardwareModel::Shared)
    }

    #[test]
    fn plru_cache_hits_after_insert() {
        let mut c = PlruCache::new(CacheGeometry::new(256, 2, 64));
        assert!(!c.probe(3));
        assert!(c.insert(3).is_none());
        assert!(c.probe(3));
        assert!(c.contains(3));
    }

    #[test]
    fn plru_eviction_from_full_set() {
        let mut c = PlruCache::new(CacheGeometry::new(256, 2, 64));
        // Set 0 holds even lines; fill with 0 and 2, then insert 4.
        c.insert(0);
        c.insert(2);
        let ev = c.insert(4).expect("full set must evict");
        assert!(ev == 0 || ev == 2);
        assert!(c.contains(4));
    }

    #[test]
    fn plru_victim_never_most_recently_used() {
        // Tree-PLRU only approximates LRU, but it must never evict the
        // most recently touched way.
        let mut c = PlruCache::new(CacheGeometry::new(512, 4, 64));
        for l in [0u64, 8, 16, 24] {
            c.insert(l); // all map to set 0 (8 sets)
        }
        c.probe(0);
        c.probe(8);
        c.probe(16);
        let ev = c.insert(32).unwrap();
        assert_ne!(ev, 16, "PLRU must protect the most recently used way");
        assert!(c.contains(32));
        // This exact-LRU divergence (PLRU picks way 0 here, LRU would
        // pick 24) is precisely why the reference model's hit rates
        // differ slightly from the primary model's — the Figure 8 gap.
        assert_eq!(ev, 0);
    }

    #[test]
    fn reference_counts_hit_levels() {
        let mut r = ReferenceSystem::new(cfg());
        let a = PhysAddr::new(0x10_0000);
        r.access(DomainId::X86, a, Access::Read, AccessKind::Data);
        r.access(DomainId::X86, a, Access::Read, AccessKind::Data);
        assert_eq!(r.stats(DomainId::X86).l1d.accesses, 2);
        assert_eq!(r.stats(DomainId::X86).l1d.hits, 1);
        assert!(r.cycles(DomainId::X86).raw() > 0);
    }

    #[test]
    fn reference_write_invalidates_peer() {
        let mut r = ReferenceSystem::new(cfg());
        let a = PhysAddr::new(0x1_4000_0000);
        r.access(DomainId::X86, a, Access::Read, AccessKind::Data);
        r.access(DomainId::ARM, a, Access::Write, AccessKind::Data);
        // x86 must re-miss now.
        r.access(DomainId::X86, a, Access::Read, AccessKind::Data);
        assert_eq!(r.stats(DomainId::X86).l1d.hits, 0);
        assert!(r.stats(DomainId::ARM).snoop_invalidations >= 1);
    }

    #[test]
    fn models_agree_on_random_trace_within_five_percent() {
        // The Figure 8 criterion, on a synthetic trace: per-level hit
        // rates of primary and reference models differ by < 5 points.
        let mut prim = MemorySystem::new(cfg()).unwrap();
        let mut refm = ReferenceSystem::new(cfg());
        let mut rng = SimRng::new(42);
        // 64 KB working set with some locality: 80% of accesses to a hot
        // 8 KB region.
        for _ in 0..60_000 {
            let hot = rng.gen_range(100) < 80;
            let span = if hot { 8 << 10 } else { 64 << 10 };
            let addr = PhysAddr::new((0x10_0000 + rng.gen_range(span)) & !7);
            let acc = if rng.gen_range(100) < 30 { Access::Write } else { Access::Read };
            prim.access(DomainId::X86, addr, acc, AccessKind::Data);
            refm.access(DomainId::X86, addr, acc, AccessKind::Data);
        }
        let p = prim.stats(DomainId::X86);
        let r = refm.stats(DomainId::X86);
        assert!(hit_rate_discrepancy(p.l1d.hit_rate(), r.l1d.hit_rate()) < 0.05);
        assert!(hit_rate_discrepancy(p.l2.hit_rate(), r.l2.hit_rate()) < 0.05);
        assert!(hit_rate_discrepancy(p.l3.hit_rate(), r.l3.hit_rate()) < 0.05);
    }

    #[test]
    fn discrepancy_helper() {
        assert!((hit_rate_discrepancy(0.93, 0.95) - 0.02).abs() < 1e-12);
    }
}
