//! Memory system simulator for the Stramash reproduction.
//!
//! This crate is the Rust counterpart of Stramash-QEMU's memory model
//! (§7 of the paper): one coherent physical memory shared by both ISA
//! domains, per-domain three-level cache hierarchies with MESI
//! coherence, the three Figure 3 hardware models, and the CXL snoop cost
//! accounting of §7.3.
//!
//! * [`phys`] — physical addresses, the Figure 4 layout, and the sparse
//!   byte backing store (data really lives here; both domains see every
//!   write immediately, like cache-coherent DRAM).
//! * [`hwmodel`] — *Separated* / *Shared* / *Fully Shared* address
//!   classification and DRAM latency selection.
//! * [`cache`] — set-associative LRU caches and per-domain hierarchies.
//! * [`system`] — [`MemorySystem`], the timed access path with MESI
//!   transitions and CXL snoops; the currency is [`stramash_sim::Cycles`].
//! * [`mod@reference`] — an independently structured model (the gem5 Ruby
//!   stand-in) used by the Figure 7/8 validation benches.
//!
//! # Example
//!
//! ```
//! use stramash_mem::{MemorySystem, PhysAddr};
//! use stramash_sim::{DomainId, HardwareModel, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
//! let mut mem = MemorySystem::new(cfg)?;
//! // x86 writes a value into the 4–8 GB shared pool...
//! let pool = PhysAddr::new(5 << 30);
//! mem.write_u64(DomainId::X86, pool, 42);
//! // ...and the Arm kernel reads it back coherently.
//! let (value, latency) = mem.read_u64(DomainId::ARM, pool);
//! assert_eq!(value, 42);
//! assert!(latency.raw() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
mod epoch;
pub mod hwmodel;
pub mod phys;
pub mod reference;
pub mod system;

pub use cache::{Cache, CacheHierarchy, Mesi};
pub use epoch::EpochFlushOutcome;
pub use hwmodel::{AddressMap, MemClass};
pub use phys::{MemRegion, PhysAddr, PhysLayout, RegionKind, SparseMemory};
pub use reference::ReferenceSystem;
pub use system::{
    Access, AccessKind, AccessOutcome, AccessPlan, EccFault, EccScrubReport, HitLevel,
    MemorySystem, PlanOp, TraceEntry,
};
