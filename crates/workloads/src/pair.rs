//! The epoch-parallel pair workload: two application threads, one per
//! kernel, alternating long private compute phases with short
//! cross-domain heartbeats.
//!
//! This is the run shape the deferred-epoch engine exists for. Each
//! phase opens one machine-level epoch spanning *both* threads' batch
//! work, so the deferred log carries a lane per domain; when the lanes
//! are long enough and their cache footprints provably disjoint, the
//! boundary replay runs the two simulated hierarchies on two host
//! threads — without moving a single simulated cycle (the epoch engine
//! replays bit-identically either way). `fused` and `popcorn` kinds
//! spend almost all their time in these private phases (§9.2.1's
//! NPB-style compute), which is where the intra-run speedup comes from;
//! a `shared`-LLC machine keeps the lanes coupled and falls back to the
//! serial interleaving automatically.
//!
//! The run is stepped ([`PairRun::step`]) so harnesses can checkpoint
//! and restore mid-run: all host-side state lives in the plain-data
//! [`PairRun`], and the compiled [`ScopePlan`]s revalidate against the
//! restored TLB generations on the next phase.

use crate::client::{ArrayF64, MemoryClient, ScopePlan};
use crate::target::TargetSystem;
use stramash_kernel::msg::{Message, MsgType};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{protocol_round_trip, OsError, OsSystem};
use stramash_sim::{Cycles, DomainId};

/// Shape of one pair run.
#[derive(Debug, Clone, Copy)]
pub struct PairConfig {
    /// Elements per per-thread vector (three vectors per thread).
    pub elems: u64,
    /// Number of compute phases (each runs both threads once).
    pub phases: u32,
    /// Whether a heartbeat message round-trip separates phases. It runs
    /// *between* epochs, so it never blocks the horizon — but it keeps
    /// the messaging layer honest in the fingerprint.
    pub heartbeat: bool,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig { elems: 6_000, phases: 24, heartbeat: true }
    }
}

/// Final result of a pair run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairOutcome {
    /// Order-stable checksum over both threads' phase reductions.
    pub checksum: f64,
    /// Phases executed.
    pub phases: u32,
    /// Epochs whose boundary replay actually ran two host threads.
    pub parallel_epochs: u64,
    /// Total deferred log entries replayed across the run.
    pub epoch_entries: u64,
}

/// One thread's working set: three vectors and its compiled plan.
#[derive(Debug, Clone)]
struct PairThread {
    pid: Pid,
    x: ArrayF64,
    y: ArrayF64,
    z: ArrayF64,
    plan: ScopePlan,
    /// Per-thread running reduction, folded into the checksum.
    acc: f64,
}

/// All host-side state of a stepped pair run (plain data — clone it
/// alongside a system checkpoint to resume later).
#[derive(Debug, Clone)]
pub struct PairRun {
    cfg: PairConfig,
    threads: [PairThread; 2],
    phase: u32,
    parallel_epochs: u64,
    epoch_entries: u64,
}

impl PairRun {
    /// Spawns the two threads (x86 and Arm) and initialises their
    /// vectors — each thread's working set is faulted in as one
    /// contiguous block, so the pool frames behind the two threads
    /// form disjoint runs (what lets the epoch snoop windows prove the
    /// lanes independent).
    ///
    /// # Errors
    ///
    /// Allocation / translation errors.
    pub fn setup(sys: &mut TargetSystem, cfg: PairConfig) -> Result<Self, OsError> {
        let mut threads = Vec::with_capacity(2);
        for (t, domain) in DomainId::ALL.into_iter().enumerate() {
            let pid = sys.spawn(domain)?;
            let mut c = MemoryClient::new(sys, pid);
            let x = c.alloc_f64(cfg.elems)?;
            let y = c.alloc_f64(cfg.elems)?;
            let z = c.alloc_f64(cfg.elems)?;
            {
                let mut s = c.batch()?;
                let bias = 1.0 + t as f64;
                let mut chunk = [0.0f64; 512];
                let mut i = 0u64;
                while i < cfg.elems {
                    let n = (cfg.elems - i).min(512) as usize;
                    for (k, v) in chunk[..n].iter_mut().enumerate() {
                        *v = bias + (i + k as u64) as f64 * 0.001;
                    }
                    s.st_f64_slice(x, i, &chunk[..n], 2)?;
                    for v in chunk[..n].iter_mut() {
                        *v *= 0.5;
                    }
                    s.st_f64_slice(y, i, &chunk[..n], 2)?;
                    for v in chunk[..n].iter_mut() {
                        *v = bias - *v;
                    }
                    s.st_f64_slice(z, i, &chunk[..n], 2)?;
                    i += n as u64;
                }
            }
            c.flush_work()?;
            threads.push(PairThread { pid, x, y, z, plan: ScopePlan::new(), acc: 0.0 });
        }
        let threads = match <[PairThread; 2]>::try_from(threads) {
            Ok(t) => t,
            Err(_) => unreachable!("exactly two threads built"),
        };
        Ok(PairRun { cfg, threads, phase: 0, parallel_epochs: 0, epoch_entries: 0 })
    }

    /// Phases run so far.
    #[must_use]
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Whether every configured phase has run.
    #[must_use]
    pub fn done(&self) -> bool {
        self.phase >= self.cfg.phases
    }

    /// Runs one compute phase: one epoch spanning both threads'
    /// plan-mapped kernels, then (between epochs) the heartbeat
    /// round-trip.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn step(&mut self, sys: &mut TargetSystem) -> Result<(), OsError> {
        let coef = 0.75 + f64::from(self.phase % 7) * 0.03125;
        let n = self.cfg.elems;
        let opened = sys.epoch_open();
        for t in &mut self.threads {
            let mut c = MemoryClient::new(sys, t.pid);
            {
                let mut s = c.batch()?;
                let mut dot = 0.0f64;
                let (x, y, z) = (t.x, t.y, t.z);
                s.plan_map(&mut t.plan, &[x, y, z], &[y], n, 8, |_i, rv, wv| {
                    wv[0] = rv[1] + coef * rv[0] - 0.125 * rv[2];
                    dot += wv[0] * rv[2];
                })?;
                t.acc += dot / n as f64;
            }
            c.flush_work()?;
        }
        if opened {
            let report = sys.epoch_close();
            self.parallel_epochs += u64::from(report.parallel);
            self.epoch_entries += report.entries as u64;
        }
        if self.cfg.heartbeat {
            // A synchronous liveness ping: sent, delivered and answered
            // within the step, so the next epoch's horizon stays clear.
            protocol_round_trip(
                sys.base_mut(),
                DomainId::X86,
                Message::control(MsgType::Heartbeat),
                Message::control(MsgType::Heartbeat),
                Cycles::new(200),
            );
        }
        self.phase += 1;
        Ok(())
    }

    /// Folds both threads' reductions into the final outcome.
    #[must_use]
    pub fn finish(&self) -> PairOutcome {
        PairOutcome {
            checksum: self.threads[0].acc + 2.0 * self.threads[1].acc,
            phases: self.phase,
            parallel_epochs: self.parallel_epochs,
            epoch_entries: self.epoch_entries,
        }
    }
}

/// Sets up and runs a whole pair workload. See [`PairRun`].
///
/// # Errors
///
/// Allocation / translation errors.
pub fn run_pair(sys: &mut TargetSystem, cfg: PairConfig) -> Result<PairOutcome, OsError> {
    let mut run = PairRun::setup(sys, cfg)?;
    while !run.done() {
        run.step(sys)?;
    }
    Ok(run.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SystemKind;
    use stramash_sim::{EpochPolicy, HardwareModel, WideReplay};

    fn fingerprint(sys: &TargetSystem) -> (u64, u64, u64) {
        let base = sys.base();
        (
            base.timebase.clock(DomainId::X86).cycles().raw(),
            base.timebase.clock(DomainId::ARM).cycles().raw(),
            base.msg.counters().total(),
        )
    }

    fn run_with(kind: SystemKind, parallel: bool) -> (PairOutcome, (u64, u64, u64)) {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        // Pinned both ways: the serial leg must stay serial even under
        // STRAMASH_EPOCH_PARALLEL=1 in the environment, and the
        // two-thread replay is forced so it is exercised even on a
        // single-core host.
        sys.base_mut().set_epoch_policy(EpochPolicy {
            enabled: parallel,
            min_lane_entries: 64,
            wide: WideReplay::Force,
        });
        let cfg = PairConfig { elems: 1200, phases: 6, heartbeat: true };
        let out = run_pair(&mut sys, cfg).unwrap();
        (out, fingerprint(&sys))
    }

    #[test]
    fn pair_is_deterministic() {
        let (a, fa) = run_with(SystemKind::Stramash, false);
        let (b, fb) = run_with(SystemKind::Stramash, false);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn epoch_parallel_matches_serial_and_actually_parallelises() {
        for kind in [SystemKind::Vanilla, SystemKind::Stramash] {
            let (serial, fs) = run_with(kind, false);
            let (par, fp) = run_with(kind, true);
            assert_eq!(serial.checksum.to_bits(), par.checksum.to_bits(), "{kind}");
            assert_eq!(fs, fp, "{kind}: clocks and messages must not move");
            assert_eq!(serial.parallel_epochs, 0);
            assert!(
                par.parallel_epochs > 0,
                "{kind}: lanes were long and disjoint; replay must go wide ({} entries)",
                par.epoch_entries,
            );
        }
    }
}
