//! Experiment driver: runs one workload on one configuration and
//! collects the metrics the paper's tables and figures report.

use crate::npb::{run_npb, Class, NpbKind, NpbOutcome};
use crate::pair::{run_pair, PairConfig, PairOutcome};
use crate::target::{SystemKind, TargetSystem};
use stramash_kernel::system::{OsError, OsSystem};
use stramash_sim::{Cycles, DomainId, EpochPolicy, HardwareModel};
use std::fmt;

/// One experiment configuration: a design on a hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// The OS design.
    pub kind: SystemKind,
    /// The Figure 3 hardware model.
    pub model: HardwareModel,
}

impl Configuration {
    /// The Figure 9 configuration set: Vanilla, Popcorn-TCP,
    /// Popcorn-SHM ×3 models, Stramash ×3 models.
    #[must_use]
    pub fn figure9_set() -> Vec<Configuration> {
        let mut set = vec![
            Configuration { kind: SystemKind::Vanilla, model: HardwareModel::Shared },
            Configuration { kind: SystemKind::PopcornTcp, model: HardwareModel::Shared },
        ];
        for model in HardwareModel::ALL {
            set.push(Configuration { kind: SystemKind::PopcornShm, model });
        }
        for model in HardwareModel::ALL {
            set.push(Configuration { kind: SystemKind::Stramash, model });
        }
        set
    }

    /// Label matching the figure legends.
    #[must_use]
    pub fn label(&self) -> String {
        match self.kind {
            SystemKind::Vanilla => "Vanilla".to_string(),
            SystemKind::PopcornTcp => "Popcorn-TCP".to_string(),
            SystemKind::PopcornShm => format!("{}-SHM", self.model),
            SystemKind::Stramash => format!("Stramash-{}", self.model),
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The configuration that ran.
    pub config: Configuration,
    /// The workload.
    pub kind: NpbKind,
    /// Total runtime (x86 + Arm, the artifact's formula).
    pub runtime: Cycles,
    /// Inter-kernel messages exchanged (Table 3).
    pub messages: u64,
    /// Pages replicated across kernels (Table 3).
    pub replicated_pages: u64,
    /// Remote-memory DRAM hits across both domains.
    pub remote_hits: u64,
    /// Remote-memory DRAM hits per domain (for the artifact's
    /// Fully-Shared derivation).
    pub remote_hits_by_domain: [u64; 2],
    /// Instruction-execution cycles (the paper's INST component).
    pub inst_cycles: u64,
    /// Memory-system feedback cycles (local + remote + snoop + message
    /// traffic — the paper's memory/MSG components).
    pub mem_cycles: u64,
    /// Migration phases recorded by the perf+icount tool.
    pub perf_phases: usize,
    /// Kernel outcome (verification, checksum).
    pub outcome: NpbOutcome,
}

impl RunReport {
    /// Runtime normalised to a baseline runtime (Figure 9's y-axis).
    #[must_use]
    pub fn normalized_to(&self, baseline: Cycles) -> f64 {
        self.runtime.raw() as f64 / baseline.raw() as f64
    }

    /// The artifact's Fully-Shared runtime derivation (Appendix A.5):
    /// subtract each domain's remote hits times its remote-vs-local
    /// differential from the measured runtime.
    #[must_use]
    pub fn ae_fully_shared_estimate(&self, cfg: &stramash_sim::SimConfig) -> Cycles {
        let mut estimate = self.runtime;
        for d in DomainId::ALL {
            // A degenerate table or an underflowing adjustment means the
            // derivation is meaningless for this run; keep the measured
            // runtime rather than fabricating a clamped estimate.
            if let Ok(saved) = stramash_sim::fully_shared_estimate(
                estimate,
                self.remote_hits_by_domain[d.index()],
                &cfg.domain(d).latency,
            ) {
                estimate = saved;
            }
        }
        estimate
    }
}

/// Runs `kind` at `class` on a freshly booted `config`.
///
/// # Errors
///
/// OS or configuration errors.
pub fn run_benchmark(
    config: Configuration,
    kind: NpbKind,
    class: Class,
) -> Result<RunReport, OsError> {
    run_benchmark_with(config, kind, class, None)
}

/// As [`run_benchmark`], optionally overriding the L3 capacity (the
/// §9.2.2 cache-size sensitivity study).
///
/// # Errors
///
/// OS or configuration errors.
pub fn run_benchmark_with(
    config: Configuration,
    kind: NpbKind,
    class: Class,
    l3_bytes: Option<u64>,
) -> Result<RunReport, OsError> {
    run_benchmark_inner(config, kind, class, l3_bytes, true, true, None)
}

/// As [`run_benchmark`], but with the memory system's host-side fast
/// paths *and* the client-side batching disabled — every access goes
/// through the reference cache implementation, one scalar op at a
/// time. Simulated cycles are identical either way (the golden-stats
/// contract); this entry point exists so the perf harness can report
/// the optimisations' *end-to-end* sweep wall-clock win against the
/// genuine old code.
///
/// # Errors
///
/// OS or configuration errors.
pub fn run_benchmark_oldpath(
    config: Configuration,
    kind: NpbKind,
    class: Class,
) -> Result<RunReport, OsError> {
    run_benchmark_inner(config, kind, class, None, false, false, None)
}

/// As [`run_benchmark`], but with client-side batching disabled while
/// keeping the memory system's fast paths — the PR-3 state of the
/// code. The perf harness diffs this against the batched default to
/// isolate the batching pipeline's own end-to-end win.
///
/// # Errors
///
/// OS or configuration errors.
pub fn run_benchmark_scalar(
    config: Configuration,
    kind: NpbKind,
    class: Class,
) -> Result<RunReport, OsError> {
    run_benchmark_inner(config, kind, class, None, true, false, None)
}

/// As [`run_benchmark`], pinning the [`EpochPolicy`] a nested sweep's
/// core-budget split hands each config (`None` keeps the process
/// environment's policy). The policy only trades host wall-clock; the
/// report is identical for every setting.
///
/// # Errors
///
/// OS or configuration errors.
pub fn run_benchmark_with_policy(
    config: Configuration,
    kind: NpbKind,
    class: Class,
    policy: Option<EpochPolicy>,
) -> Result<RunReport, OsError> {
    run_benchmark_inner(config, kind, class, None, true, true, policy)
}

/// Everything measured in one pair-workload run — the nested-sweep
/// analogue of [`RunReport`]. `cycles` and `messages` are the
/// determinism fingerprint the nested harness compares across
/// parallelism levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairReport {
    /// The OS design that ran.
    pub kind: SystemKind,
    /// Workload outcome (checksum, phase and epoch counters).
    pub outcome: PairOutcome,
    /// Final per-domain clocks (x86, Arm).
    pub cycles: [u64; 2],
    /// Inter-kernel messages exchanged.
    pub messages: u64,
}

/// One point of a nested sweep×epoch run: boots `kind` on the Shared
/// model, pins the inner [`EpochPolicy`] handed down by the sweep
/// pool's core-budget split (`None` keeps the process environment's
/// policy), and runs the two-thread pair workload. The policy only
/// moves host wall-clock; the returned fingerprint is identical for
/// every policy.
///
/// # Errors
///
/// OS or configuration errors.
pub fn run_pair_benchmark(
    kind: SystemKind,
    cfg: PairConfig,
    policy: Option<EpochPolicy>,
) -> Result<PairReport, OsError> {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared)?;
    if let Some(p) = policy {
        sys.base_mut().set_epoch_policy(p);
    }
    let outcome = run_pair(&mut sys, cfg)?;
    let base = sys.base();
    Ok(PairReport {
        kind,
        outcome,
        cycles: [DomainId::X86, DomainId::ARM]
            .map(|d| base.timebase.clock(d).cycles().raw()),
        messages: base.msg.counters().total(),
    })
}

fn run_benchmark_inner(
    config: Configuration,
    kind: NpbKind,
    class: Class,
    l3_bytes: Option<u64>,
    fast_paths: bool,
    batching: bool,
    policy: Option<EpochPolicy>,
) -> Result<RunReport, OsError> {
    let mut cfg = stramash_sim::SimConfig::big_pair().with_hw_model(config.model);
    if let Some(l3) = l3_bytes {
        cfg = cfg.with_l3_size(l3);
    }
    let mut sys = TargetSystem::build_with(config.kind, cfg)?;
    if let Some(p) = policy {
        sys.base_mut().set_epoch_policy(p);
    }
    if !fast_paths {
        sys.base_mut().mem.set_fast_paths(false);
    }
    if !batching {
        sys.base_mut().set_batching(false);
    }
    let pid = sys.spawn(DomainId::X86)?;
    let migrate = config.kind.migrates();
    let outcome = run_npb(kind, &mut sys, pid, class, migrate)?;
    sys.base_mut().sync_runtime_stats();
    let remote_hits_by_domain = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        s.remote_mem_hits + s.remote_shared_mem_hits
    });
    let remote_hits = remote_hits_by_domain.iter().sum();
    let inst_cycles = DomainId::ALL
        .iter()
        .map(|&d| sys.base().timebase.clock(d).icount())
        .sum();
    let mem_cycles = DomainId::ALL
        .iter()
        .map(|&d| sys.base().timebase.clock(d).memory_cycles().raw())
        .sum();
    Ok(RunReport {
        config,
        kind,
        runtime: sys.runtime(),
        messages: sys.message_total(),
        replicated_pages: sys.replicated_pages(pid),
        remote_hits,
        remote_hits_by_domain,
        inst_cycles,
        mem_cycles,
        perf_phases: sys.base().perf.phases().len(),
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_set_has_eight_configs() {
        let set = Configuration::figure9_set();
        assert_eq!(set.len(), 8);
        assert_eq!(set[0].label(), "Vanilla");
        assert_eq!(set[2].label(), "Separated-SHM");
        assert_eq!(set[7].label(), "Stramash-Fully Shared");
    }

    #[test]
    fn is_results_reproduce_figure9_ordering() {
        // The central claim on the write-intensive benchmark: Stramash
        // (Shared) beats Popcorn-SHM (Shared) beats Popcorn-TCP; the
        // Vanilla case is the floor.
        let class = Class::Tiny;
        let vanilla = run_benchmark(
            Configuration { kind: SystemKind::Vanilla, model: HardwareModel::Shared },
            NpbKind::Is,
            class,
        )
        .unwrap();
        let tcp = run_benchmark(
            Configuration { kind: SystemKind::PopcornTcp, model: HardwareModel::Shared },
            NpbKind::Is,
            class,
        )
        .unwrap();
        let shm = run_benchmark(
            Configuration { kind: SystemKind::PopcornShm, model: HardwareModel::Shared },
            NpbKind::Is,
            class,
        )
        .unwrap();
        let stramash = run_benchmark(
            Configuration { kind: SystemKind::Stramash, model: HardwareModel::Shared },
            NpbKind::Is,
            class,
        )
        .unwrap();
        for r in [&vanilla, &tcp, &shm, &stramash] {
            assert!(r.outcome.verified, "{} must sort correctly", r.config);
        }
        assert!(vanilla.runtime < stramash.runtime);
        assert!(stramash.runtime < shm.runtime, "fused beats multiple-kernel on IS");
        assert!(shm.runtime < tcp.runtime, "SHM messaging beats TCP");
        // Table 3 shape: Stramash sends far fewer messages and
        // replicates far fewer pages. (At Tiny class the gap is smaller
        // than the paper's 99 % — the bench harness runs Small, where
        // the reduction is orders of magnitude.)
        assert!(
            stramash.messages * 2 < shm.messages,
            "stramash msgs {} vs popcorn {}",
            stramash.messages,
            shm.messages
        );
        assert!(stramash.replicated_pages * 2 < shm.replicated_pages);
    }

    #[test]
    fn pair_benchmark_fingerprint_ignores_epoch_policy() {
        // The nested-sweep contract: the inner epoch policy handed down
        // by the core-budget split only trades host wall-clock — the
        // simulated fingerprint is identical for every policy.
        let cfg = PairConfig { elems: 1200, phases: 4, heartbeat: true };
        let off = EpochPolicy { enabled: false, ..EpochPolicy::default() };
        let wide = EpochPolicy {
            enabled: true,
            min_lane_entries: 64,
            wide: stramash_sim::WideReplay::Force,
        };
        let a = run_pair_benchmark(SystemKind::Stramash, cfg, Some(off)).unwrap();
        let b = run_pair_benchmark(SystemKind::Stramash, cfg, Some(wide)).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.outcome.checksum.to_bits(), b.outcome.checksum.to_bits());
        assert_eq!(a.outcome.parallel_epochs, 0);
        assert!(b.outcome.parallel_epochs > 0, "forced-wide leg must go wide");
    }

    #[test]
    fn vanilla_exchanges_no_messages() {
        let r = run_benchmark(
            Configuration { kind: SystemKind::Vanilla, model: HardwareModel::Shared },
            NpbKind::Is,
            Class::Tiny,
        )
        .unwrap();
        assert_eq!(r.messages, 0);
        assert_eq!(r.replicated_pages, 0);
        assert!(r.normalized_to(r.runtime) == 1.0);
    }
}
