//! The production-scale KV serving scenario (ROADMAP item 1).
//!
//! Figure 14 replays a fixed request stream through one migrated server
//! thread. This module grows that into the "millions of users" shape:
//! N worker processes spread across both ISA domains, each owning one
//! hash shard of the store ([`crate::kvstore::ShardedKv`]), thousands
//! of logical client connections multiplexed over the one physical
//! ring pair ([`stramash_kernel::msg::MessagingLayer::open_stream`]),
//! and an *open-loop* load generator: seeded Poisson arrivals, Zipfian
//! key popularity and a configurable read/write mix, driven to a target
//! offered load rather than lock-step request/response.
//!
//! # Timing model
//!
//! The simulator has no global event queue — it has two per-domain
//! cycle clocks that memory traffic and messaging charge into. The
//! serving scenario layers an event-driven timeline on top: every
//! request's wire and service costs are measured from those clocks
//! (exactly the charges `run_kv` makes), then composed on a virtual
//! timeline with per-worker availability:
//!
//! ```text
//! arrival  ──send──▶ ring ──queue──▶ worker busy: recv+process+respond ──recv──▶ done
//!    t      send_c           wait         recv_c + service + resp_send_c   resp_recv_c
//! ```
//!
//! Latency = completion − arrival; the queueing term is what separates
//! an offered load below saturation from one above it. Everything —
//! schedule, costs, timeline — is a pure function of the seed and the
//! config, so a same-seed replay is byte-identical on every platform
//! (the generator deliberately avoids `ln`/`exp`/`powf` from libm; see
//! [`det_ln`]).
//!
//! Per-request latencies land in [`stramash_sim::trace::HIST_KVSERVE_REQUEST`]
//! (and queueing in `HIST_KVSERVE_QUEUE`) so `stramash-cli trace` and
//! phase reports show the p50/p99 tails alongside the run's own
//! [`ServeResult`].

use crate::kvstore::{fnv, key_of, KvOp, ShardedKv, ENTRY_HEADER};
use crate::target::TargetSystem;
use stramash_kernel::msg::{Message, MsgType, StreamId};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};
use stramash_sim::trace::{LatencyHistogram, HIST_KVSERVE_QUEUE, HIST_KVSERVE_REQUEST};
use stramash_sim::rng::SimRng;
use stramash_sim::{Cycles, DomainId};
use std::collections::BinaryHeap;
use std::cmp::Reverse;

/// Configuration of one serving run. `Default` is the small smoke
/// shape; the bench and CLI scale it up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker processes (== store shards). Odd-indexed workers migrate
    /// to the Arm kernel on designs that migrate.
    pub workers: u32,
    /// Logical client connections multiplexed over the ring pair.
    pub connections: u32,
    /// Per-connection credit window (max unanswered requests).
    pub window: u32,
    /// Total requests the generator produces.
    pub requests: u64,
    /// Offered load in requests per million cycles (the open-loop
    /// arrival rate; arrivals do *not* slow down when the server lags).
    pub offered_load: f64,
    /// Percentage of GETs (the rest are SETs), 0–100.
    pub read_pct: u32,
    /// Value payload bytes.
    pub payload_len: u32,
    /// Distinct keys; popularity is Zipf-distributed over them.
    pub keyspace: u64,
    /// Zipf exponent (s = 0 is uniform; web serving is ≈ 0.99).
    pub zipf_s: f64,
    /// Generator seed. Same seed + same config ⇒ byte-identical
    /// schedule and run fingerprint on every system kind and platform.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            connections: 64,
            window: 8,
            requests: 2000,
            offered_load: 10.0,
            read_pct: 90,
            payload_len: 128,
            keyspace: 1000,
            zipf_s: 0.99,
            seed: 0x5e17_ab1e,
        }
    }
}

/// One generated request: what arrives, when, on which connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival cycle on the open-loop timeline.
    pub arrival: u64,
    /// Key hash (already spread by the Fibonacci multiplier).
    pub key_hash: u64,
    /// Write (SET) or read (GET).
    pub write: bool,
    /// Logical connection carrying it.
    pub conn: u32,
}

/// Natural log over positive finite inputs using only IEEE-exact f64
/// ops (+, −, ×, ÷), so results are bit-identical on every platform —
/// `f64::ln` goes through libm, whose rounding may differ across
/// hosts, which would break the cross-platform schedule determinism
/// the goldens pin.
///
/// Decomposes `x = m·2^e` with `m ∈ [1, 2)` and sums the atanh series
/// `ln(m) = 2(s + s³/3 + s⁵/5 + …)` with `s = (m−1)/(m+1)` (|s| ≤ 1/3,
/// 25 fixed terms — far past f64 precision).
pub(crate) fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let mut term = s;
    let mut sum = 0.0;
    let mut k = 1.0;
    for _ in 0..25 {
        sum += term / k;
        term *= s2;
        k += 2.0;
    }
    e as f64 * core::f64::consts::LN_2 + 2.0 * sum
}

/// `e^x` companion to [`det_ln`], same exact-ops-only contract.
/// Argument-reduces by powers of two (`x = k·ln2 + r`, |r| ≤ ln2/2),
/// sums the Taylor series for `e^r`, then scales by `2^k` through the
/// exponent bits. Valid for the moderate |x| ≤ ~700 this module uses.
pub(crate) fn det_exp(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    let kf = (x / core::f64::consts::LN_2).round();
    let r = x - kf * core::f64::consts::LN_2;
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..=20 {
        term *= r / f64::from(n);
        sum += term;
    }
    let k = kf as i64;
    debug_assert!((-1000..=1000).contains(&k));
    sum * f64::from_bits(((1023 + k) as u64) << 52)
}

/// Generates the open-loop request schedule: a pure function of the
/// config — system kind, hardware model and host platform never touch
/// it, which is what makes cross-kind latency curves comparable and
/// same-seed replays byte-identical.
///
/// Arrivals are Poisson (exponential inter-arrival via inverse CDF at
/// the configured offered load), keys are Zipf(`zipf_s`) ranks mapped
/// through the Fibonacci spreader so popular keys scatter across
/// shards, the read/write mix is an independent Bernoulli draw, and
/// connections are assigned round-robin.
#[must_use]
pub fn generate_schedule(cfg: &ServeConfig) -> Vec<Request> {
    let mut rng = SimRng::new(cfg.seed ^ 0x6b76_7365_7276_6531); // "kvserve1"
    // Zipf CDF over the keyspace: weight(rank i) = (i+1)^-s, computed
    // as exp(-s·ln(i+1)) with the deterministic helpers.
    let k = cfg.keyspace.max(1);
    let mut cdf = Vec::with_capacity(k as usize);
    let mut total = 0.0f64;
    for i in 0..k {
        let w = if cfg.zipf_s == 0.0 { 1.0 } else { det_exp(-cfg.zipf_s * det_ln(i as f64 + 1.0)) };
        total += w;
        cdf.push(total);
    }
    let mean_gap = 1.0e6 / cfg.offered_load.max(1e-9); // cycles between arrivals
    let mut schedule = Vec::with_capacity(cfg.requests as usize);
    let mut t = 0u64;
    for r in 0..cfg.requests {
        // Exponential inter-arrival, inverse CDF. 1−u ∈ (0, 1] so the
        // log argument is never zero.
        let gap = -det_ln(1.0 - rng.gen_f64()) * mean_gap;
        // Quantize to whole cycles; tiny gaps still advance ≥ 1 cycle
        // only via accumulated fractions being dropped — simultaneous
        // arrivals are legal (two clients really can).
        t += gap as u64;
        // Zipf rank via binary search over the CDF.
        let u = rng.gen_f64() * total;
        let rank = cdf.partition_point(|&c| c < u) as u64;
        let rank = rank.min(k - 1);
        let write = rng.gen_range(100) >= u64::from(cfg.read_pct.min(100));
        schedule.push(Request {
            arrival: t,
            key_hash: key_of(rank),
            write,
            conn: (r % u64::from(cfg.connections.max(1))) as u32,
        });
    }
    schedule
}

/// FNV-1a fingerprint of a schedule's every byte — pinned by the
/// goldens to prove same-seed replays are byte-identical.
#[must_use]
pub fn schedule_fingerprint(schedule: &[Request]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for r in schedule {
        for b in r
            .arrival
            .to_le_bytes()
            .into_iter()
            .chain(r.key_hash.to_le_bytes())
            .chain([u8::from(r.write)])
            .chain(r.conn.to_le_bytes())
        {
            acc = fnv(acc, b);
        }
    }
    acc
}

/// Result of one serving run at one offered load.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Offered load the generator targeted (req per million cycles).
    pub offered_load: f64,
    /// Requests completed (== generated; open loop never drops).
    pub completed: u64,
    /// First arrival to last completion on the virtual timeline.
    pub makespan: Cycles,
    /// Achieved throughput in requests per million cycles. Tracks the
    /// offered load below saturation and flattens at capacity above it.
    pub throughput: f64,
    /// End-to-end request latency histogram (arrival → response).
    pub latency: LatencyHistogram,
    /// Queueing-delay histogram (ring arrival → worker pickup).
    pub queue: LatencyHistogram,
    /// Worker-busy cycles summed over workers (service utilization
    /// numerator; divide by `makespan × workers`).
    pub busy: Cycles,
    /// Stream-window stalls summed over connections (client-side
    /// backpressure events).
    pub window_stalls: u64,
    /// FNV-1a fingerprint over every response length and latency —
    /// the determinism contract for goldens.
    pub fingerprint: u64,
    /// Schedule fingerprint (identical across system kinds).
    pub schedule_fingerprint: u64,
}

impl ServeResult {
    /// p50 request latency in cycles (log₂-bucket estimate).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.latency.percentile(50.0)
    }

    /// p99 request latency in cycles.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.latency.percentile(99.0)
    }
}

/// Runs the serving scenario on an already-built system.
///
/// Spawns `cfg.workers` worker processes (odd-indexed ones migrate to
/// the Arm kernel on migrating designs), shards the store across them,
/// pre-populates every key, opens `cfg.connections` multiplexed
/// streams, then drives the generated schedule through the event-driven
/// timeline described in the module docs.
///
/// # Errors
///
/// OS errors from setup or the shards' memory traffic.
pub fn run_serve(sys: &mut TargetSystem, cfg: &ServeConfig) -> Result<ServeResult, OsError> {
    let schedule = generate_schedule(cfg);
    let sched_fp = schedule_fingerprint(&schedule);
    let payload = vec![0xabu8; cfg.payload_len as usize];

    // Workers: spawn on x86, spread odd indices to Arm when the design
    // migrates (Vanilla keeps everything on the origin kernel but still
    // pays the messaging costs, mirroring `run_kv`).
    let workers: Vec<Pid> = (0..cfg.workers.max(1))
        .map(|_| sys.spawn(DomainId::X86))
        .collect::<Result<_, _>>()?;
    if sys.kind().migrates() {
        for (i, &pid) in workers.iter().enumerate() {
            if i % 2 == 1 {
                sys.migrate(pid, DomainId::ARM)?;
            }
        }
    }
    // Heap: every key lives once in its shard (SETs overwrite in
    // place), plus slack for hash-collision chains.
    let keys_per_shard = cfg.keyspace / workers.len() as u64 + 2;
    let heap = (keys_per_shard + 64) * (ENTRY_HEADER + u64::from(cfg.payload_len) + 64);
    let mut store = ShardedKv::setup(sys, &workers, heap)?;

    // Pre-populate the full keyspace so reads hit and writes overwrite
    // (steady-state serving, not cold start). Untimed: before the
    // measured window.
    for rank in 0..cfg.keyspace {
        store.process(sys, &workers, KvOp::Set, key_of(rank), &payload)?;
    }

    // Logical connections, all initiated by the client-side kernel.
    let client = DomainId::X86;
    let streams: Vec<StreamId> = (0..cfg.connections.max(1))
        .map(|_| sys.base_mut().msg.open_stream(client, cfg.window.max(1)))
        .collect();

    // Event-driven drive. Per-worker availability and per-connection
    // in-flight completions live on the virtual timeline; the costs
    // composing it are measured live from the simulated clocks.
    //
    // Client receives are *deferred*: a response is complete (for
    // latency purposes) when the server's send lands it in the
    // client-side ring; the client drains it — paying the wire receive
    // and returning the stream credit — when it next touches that
    // connection. That keeps the mux's in-flight accounting equal to
    // the number of virtually-outstanding requests, so window
    // exhaustion and its stall counter fire exactly when the timeline
    // says the connection is full.
    let mut free_at = vec![0u64; workers.len()];
    let mut inflight: Vec<BinaryHeap<Reverse<(u64, u32)>>> =
        vec![BinaryHeap::new(); streams.len()];
    let mut latency_h = LatencyHistogram::new();
    let mut queue_h = LatencyHistogram::new();
    let mut busy = 0u64;
    let mut last_completion = 0u64;
    let first_arrival = schedule.first().map_or(0, |r| r.arrival);
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;

    // Client drains one landed response: wire receive + credit return.
    fn drain_response(sys: &mut TargetSystem, sid: StreamId, client: DomainId, resp_len: u32) {
        let base = sys.base_mut();
        let c = {
            let (msg, mem) = (&mut base.msg, &mut base.mem);
            msg.stream_consume(mem, sid, Message { ty: MsgType::KvResponse, payload: resp_len })
                .expect("stream is open")
        };
        base.charge(client, c);
    }

    for req in &schedule {
        let conn = req.conn as usize;
        let sid = streams[conn];
        let shard = store.shard_of(req.key_hash);
        let worker = workers[shard];
        let server = sys.current_domain(worker)?;
        let op = if req.write { KvOp::Set } else { KvOp::Get };

        // Drain responses that landed before this arrival.
        while let Some(&Reverse((done, len))) = inflight[conn].peek() {
            if done > req.arrival {
                break;
            }
            inflight[conn].pop();
            drain_response(sys, sid, client, len);
        }

        // Flow control: a full window defers the send until the
        // earliest outstanding response on this connection lands. The
        // mux counts the stall; the virtual send time moves past the
        // completion that freed the credit.
        let mut send_time = req.arrival;
        let wire_req = Message { ty: MsgType::KvRequest, payload: cfg.payload_len };
        let send_c = loop {
            let attempt = {
                let base = sys.base_mut();
                let (msg, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
                msg.stream_request(mem, ipi, sid, wire_req)
            };
            match attempt {
                Ok(c) => break c,
                Err(_) => {
                    let Reverse((done, len)) = inflight[conn]
                        .pop()
                        .expect("window full implies an outstanding completion");
                    drain_response(sys, sid, client, len);
                    send_time = send_time.max(done);
                }
            }
        };
        sys.base_mut().charge(client, send_c);

        // Server side: receive + process + respond, measured as the
        // server domain's clock delta so DSM faults, cache misses and
        // ring reads all count as service time.
        let ring_at = send_time + send_c.raw();
        let begin = ring_at.max(free_at[shard]);
        let served_from = sys.base().timebase.clock(server).cycles().raw();
        {
            let base = sys.base_mut();
            let c = {
                let (msg, mem) = (&mut base.msg, &mut base.mem);
                msg.stream_serve_receive(mem, sid, server, wire_req).expect("stream is open")
            };
            base.charge(server, c);
        }
        let (_, resp_len) = store.process(sys, &workers, op, req.key_hash, &payload)?;
        let wire_resp = Message { ty: MsgType::KvResponse, payload: resp_len };
        let resp_send_c = {
            let base = sys.base_mut();
            let (msg, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
            msg.stream_respond(mem, ipi, sid, server, wire_resp).expect("stream is open")
        };
        sys.base_mut().charge(server, resp_send_c);
        let service = sys.base().timebase.clock(server).cycles().raw() - served_from;

        // Complete when the server's response send lands in the
        // client-side ring (`service` includes that send). The client's
        // own drain cost is real CPU time but does not extend the
        // request's wire latency.
        let completion = begin + service;
        free_at[shard] = begin + service;
        busy += service;
        inflight[conn].push(Reverse((completion, resp_len)));
        last_completion = last_completion.max(completion);

        let latency = completion - req.arrival;
        let wait = begin - ring_at;
        latency_h.observe(Cycles::new(latency));
        queue_h.observe(Cycles::new(wait));
        {
            let base = sys.base();
            base.observe(HIST_KVSERVE_REQUEST, Cycles::new(latency));
            base.observe(HIST_KVSERVE_QUEUE, Cycles::new(wait));
        }
        for b in resp_len.to_le_bytes().into_iter().chain(latency.to_le_bytes()) {
            fingerprint = fnv(fingerprint, b);
        }
    }

    // Drain every still-outstanding response so the wire and credit
    // accounting balance before the streams close.
    for (conn, heap) in inflight.iter_mut().enumerate() {
        while let Some(Reverse((_, len))) = heap.pop() {
            drain_response(sys, streams[conn], client, len);
        }
    }
    let window_stalls = streams
        .iter()
        .filter_map(|&s| sys.base().msg.stream_stats(s))
        .map(|st| st.window_stalls)
        .sum();
    for &s in &streams {
        sys.base_mut().msg.close_stream(s);
    }

    let makespan = last_completion.saturating_sub(first_arrival).max(1);
    Ok(ServeResult {
        offered_load: cfg.offered_load,
        completed: schedule.len() as u64,
        makespan: Cycles::new(makespan),
        throughput: schedule.len() as f64 * 1.0e6 / makespan as f64,
        latency: latency_h,
        queue: queue_h,
        busy: Cycles::new(busy),
        window_stalls,
        fingerprint,
        schedule_fingerprint: sched_fp,
    })
}

/// Builds a fresh system per offered-load point and runs the scenario,
/// returning one [`ServeResult`] per load — the throughput-vs-load and
/// p50/p99-vs-load curve for one (kind, model) pair.
///
/// # Errors
///
/// Build or OS errors.
pub fn run_serve_curve(
    kind: crate::target::SystemKind,
    model: stramash_sim::HardwareModel,
    base_cfg: &ServeConfig,
    loads: &[f64],
) -> Result<Vec<ServeResult>, OsError> {
    let mut out = Vec::with_capacity(loads.len());
    for &load in loads {
        let cfg = ServeConfig { offered_load: load, ..*base_cfg };
        let mut sys = TargetSystem::build(kind, model)?;
        out.push(run_serve(&mut sys, &cfg)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SystemKind;
    use stramash_sim::HardwareModel;

    #[test]
    fn det_ln_and_exp_match_libm_closely() {
        for x in [1e-6, 0.5, 1.0, 2.0, core::f64::consts::E, 1000.0, 1e12] {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs().max(1.0) * 1e-14,
                "ln({x}): {got} vs {want}"
            );
        }
        for x in [-20.0, -1.0, 0.0, 0.5, 1.0, 10.0, 100.0] {
            let got = det_exp(x);
            let want = x.exp();
            assert!(
                ((got - want) / want).abs() < 1e-13,
                "exp({x}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn schedule_is_seeded_poisson_zipf() {
        let cfg = ServeConfig { requests: 5000, ..ServeConfig::default() };
        let a = generate_schedule(&cfg);
        let b = generate_schedule(&cfg);
        assert_eq!(a, b, "same seed must be byte-identical");
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        let other = generate_schedule(&ServeConfig { seed: 1, ..cfg });
        assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&other));

        // Arrivals are nondecreasing and the mean gap tracks the
        // offered load (10 req/Mcycle ⇒ ~100k-cycle gaps).
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = a.last().unwrap().arrival - a[0].arrival;
        let mean_gap = span as f64 / (a.len() - 1) as f64;
        assert!(
            (60_000.0..140_000.0).contains(&mean_gap),
            "mean inter-arrival {mean_gap} should be ≈ 100_000"
        );

        // Zipf skew: the most popular key hash dominates a uniform
        // share by an order of magnitude.
        let mut counts = std::collections::HashMap::new();
        for r in &a {
            *counts.entry(r.key_hash).or_insert(0u64) += 1;
        }
        let top = counts.values().max().copied().unwrap();
        let uniform = cfg.requests / cfg.keyspace;
        assert!(top > uniform * 10, "top key {top} vs uniform {uniform}");

        // Read/write mix within sampling noise of 90/10.
        let writes = a.iter().filter(|r| r.write).count();
        let frac = writes as f64 / a.len() as f64;
        assert!((0.06..0.14).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn serve_smoke_fused_beats_tcp_tails() {
        let cfg = ServeConfig {
            workers: 2,
            connections: 8,
            window: 4,
            requests: 300,
            offered_load: 5.0,
            keyspace: 100,
            ..ServeConfig::default()
        };
        let mut fused = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let f = run_serve(&mut fused, &cfg).unwrap();
        let mut tcp = TargetSystem::build(SystemKind::PopcornTcp, HardwareModel::Shared).unwrap();
        let t = run_serve(&mut tcp, &cfg).unwrap();
        assert_eq!(f.completed, 300);
        assert_eq!(
            f.schedule_fingerprint, t.schedule_fingerprint,
            "the schedule must not depend on the system kind"
        );
        assert!(
            f.p99() < t.p99(),
            "fused p99 {} should beat TCP p99 {}",
            f.p99(),
            t.p99()
        );
        assert!(f.throughput > 0.0 && t.throughput > 0.0);
        assert!(fused.audit().is_empty(), "{:?}", fused.audit());
    }

    #[test]
    fn serve_saturates_under_overload() {
        // Throughput must flatten (and p99 explode) once the offered
        // load exceeds capacity — the open-loop signature.
        let cfg = ServeConfig {
            workers: 2,
            connections: 8,
            window: 4,
            requests: 400,
            keyspace: 100,
            ..ServeConfig::default()
        };
        let loads = [1.0, 2000.0];
        let curve =
            run_serve_curve(SystemKind::PopcornTcp, HardwareModel::Shared, &cfg, &loads)
                .unwrap();
        let light = &curve[0];
        let heavy = &curve[1];
        // At 1 req/Mcycle TCP keeps up: achieved ≈ offered.
        assert!(
            (light.throughput - light.offered_load).abs() / light.offered_load < 0.25,
            "light load achieved {} vs offered {}",
            light.throughput,
            light.offered_load
        );
        // At 2000 req/Mcycle it cannot: achieved ≪ offered, queueing
        // dominates latency.
        assert!(
            heavy.throughput < heavy.offered_load * 0.5,
            "overload achieved {} vs offered {}",
            heavy.throughput,
            heavy.offered_load
        );
        assert!(heavy.p99() > light.p99() * 10, "{} vs {}", heavy.p99(), light.p99());
        assert!(heavy.queue.percentile(99.0) > light.queue.percentile(99.0));
    }
}
