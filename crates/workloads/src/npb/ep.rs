//! EP — Embarrassingly Parallel (NPB's compute-bound kernel).
//!
//! The paper's benchmark list (§8.3, citing RNR-94-007) includes EP
//! alongside IS/CG/MG/FT; the artifact ships the four memory-bound ones,
//! so EP is an *extension* here (not part of [`super::NpbKind::ALL`]).
//! EP generates Gaussian pairs with the Marsaglia polar method and
//! tallies them into ten annulus counters — almost pure compute with a
//! tiny working set, so under migration the OS overheads (messaging,
//! faults) are all that separates the designs. It is the control case:
//! every system should converge to Vanilla here.

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::MemoryClient;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    /// Gaussian pairs per procedure.
    pairs: u64,
    /// Offloaded procedures.
    procedures: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { pairs: 2_000, procedures: 2 },
        Class::Small => Params { pairs: 50_000, procedures: 4 },
        Class::Validation => Params { pairs: 20_000, procedures: 2 },
        Class::Large => Params { pairs: 400_000, procedures: 4 },
    }
}

/// Runs EP. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let mut c = MemoryClient::new(sys, pid);
    // The annulus counters q[0..10] and the running sums, in simulated
    // memory (EP's entire data footprint).
    let q = c.alloc_u64(10)?;
    let sums = c.alloc_f64(2)?;
    for i in 0..10 {
        c.st_u64(q, i, 0)?;
    }
    c.st_f64(sums, 0, 0.0)?;
    c.st_f64(sums, 1, 0.0)?;

    let mut rng = DataRng::new(0xE9);
    let mut procedures = 0;
    for _ in 0..p.procedures {
        offload(&mut c, migrate, |c| {
            let mut sx = c.ld_f64(sums, 0)?;
            let mut sy = c.ld_f64(sums, 1)?;
            let mut generated = 0u64;
            while generated < p.pairs {
                // Marsaglia polar method (as NPB EP does).
                let x = 2.0 * rng.next_f64() - 1.0;
                let y = 2.0 * rng.next_f64() - 1.0;
                let t = x * x + y * y;
                c.work(18)?;
                if t >= 1.0 || t == 0.0 {
                    continue;
                }
                let f = (-2.0 * t.ln() / t).sqrt();
                let (gx, gy) = (x * f, y * f);
                sx += gx;
                sy += gy;
                // Tally the annulus of max(|gx|,|gy|).
                let bucket = gx.abs().max(gy.abs()).floor() as u64;
                let bucket = bucket.min(9);
                let n = c.ld_u64(q, bucket)?;
                c.st_u64(q, bucket, n + 1)?;
                c.work(30)?;
                generated += 1;
            }
            c.st_f64(sums, 0, sx)?;
            c.st_f64(sums, 1, sy)?;
            Ok(())
        })?;
        procedures += 1;
    }
    c.flush_work()?;

    // Verification: the counters account for every generated pair, and
    // the Gaussian sums are plausibly near zero-mean.
    let mut counted = 0u64;
    for i in 0..10 {
        counted += c.ld_u64(q, i)?;
    }
    let total_pairs = p.pairs * u64::from(p.procedures);
    let sx = c.ld_f64(sums, 0)?;
    let mean = sx / total_pairs as f64;
    let verified = counted == total_pairs && mean.abs() < 0.1;
    Ok(NpbOutcome { verified, checksum: sx, procedures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn ep_tallies_every_pair_locally() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "EP verification failed: checksum {}", out.checksum);
        assert_eq!(out.procedures, 2);
    }

    #[test]
    fn ep_is_compute_dominated() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        run(&mut sys, pid, Class::Tiny, false).unwrap();
        use stramash_kernel::system::OsSystem as _;
        let clock = sys.base().timebase.clock(DomainId::X86);
        // INST cycles dominate the memory feedback — the opposite of
        // IS/CG, which are memory-bound.
        assert!(
            clock.icount() > clock.memory_cycles().raw(),
            "EP must be compute-bound: {} insns vs {} mem cycles",
            clock.icount(),
            clock.memory_cycles().raw()
        );
    }

    #[test]
    fn ep_designs_converge_under_migration() {
        // The control experiment: with almost no shared data, the fused
        // and multiple-kernel designs both sit close to Vanilla — at
        // Small class, where the fixed migration overheads amortise
        // against the compute.
        let mut vanilla = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = vanilla.spawn(DomainId::X86).unwrap();
        run(&mut vanilla, pid, Class::Small, false).unwrap();
        use stramash_kernel::system::OsSystem as _;
        let base = vanilla.runtime().raw() as f64;

        let mut stra = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = stra.spawn(DomainId::X86).unwrap();
        let out = run(&mut stra, pid, Class::Small, true).unwrap();
        assert!(out.verified);
        let ratio = stra.runtime().raw() as f64 / base;
        assert!(ratio < 1.15, "EP under Stramash should stay near Vanilla, got {ratio:.2}x");

        let mut pop = popcorn_os::PopcornSystem::new_shm(SimConfig::big_pair()).unwrap();
        let pid = pop.spawn(DomainId::X86).unwrap();
        let out = run(&mut pop, pid, Class::Small, true).unwrap();
        assert!(out.verified);
        let ratio = pop.runtime().raw() as f64 / base;
        assert!(ratio < 1.25, "EP under Popcorn should stay near Vanilla, got {ratio:.2}x");
    }
}
