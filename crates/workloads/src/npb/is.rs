//! IS — Integer Sort (bucket ranking).
//!
//! The write-intensive kernel: every iteration histograms the keys,
//! prefix-sums the buckets, and scatters the keys into ranked positions
//! — "integer sorting algorithms … modify the sequence of keys during
//! the procedure stage" (§9.2.1). The scatter phase's random-index
//! writes are what give Stramash its biggest win (Figure 9's 2.1×):
//! every write invalidates peer cache lines rather than replicating
//! pages.

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::MemoryClient;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    keys: u64,
    max_key: u64,
    iterations: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { keys: 1 << 10, max_key: 1 << 7, iterations: 2 },
        // keys + ranked output = 8 MB: past the 4 MB L3, inside 32 MB.
        Class::Small => Params { keys: 1 << 19, max_key: 1 << 11, iterations: 3 },
        // 2 MB working set: between L2 and L3.
        Class::Validation => Params { keys: 1 << 17, max_key: 1 << 11, iterations: 3 },
        // 64 MB working set: exceeds even the 32 MB LLC, the regime
        // where the paper's Figure 10 IS trend lives.
        Class::Large => Params { keys: 1 << 22, max_key: 1 << 11, iterations: 2 },
    }
}

/// Runs IS. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let mut c = MemoryClient::new(sys, pid);
    let keys = c.alloc_u64(p.keys)?;
    let sorted = c.alloc_u64(p.keys)?;
    let hist = c.alloc_u64(p.max_key)?;

    // Key generation on the origin (the NPB driver phase): streamed in
    // page-sized batches (same per-element order as the scalar loop).
    let mut rng = DataRng::new(0x15_15);
    {
        let mut s = c.batch()?;
        let mut chunk = [0u64; 512];
        let mut i = 0u64;
        while i < p.keys {
            let n = (p.keys - i).min(512) as usize;
            for v in chunk[..n].iter_mut() {
                *v = rng.next_u64() % p.max_key;
            }
            s.st_u64_slice(keys, i, &chunk[..n], 8)?;
            i += n as u64;
        }
    }

    let mut procedures = 0;
    for iter in 0..p.iterations {
        // One ranking procedure, offloaded per §9.2.
        offload(&mut c, migrate, |c| {
            let mut s = c.batch()?;
            // Clear the histogram.
            s.fill_u64(hist, 0, p.max_key, 0, 2)?;
            // Histogram the keys (read key, read-modify-write bucket —
            // interleaved arrays, so element ops through the session).
            for i in 0..p.keys {
                let k = s.ld_u64(keys, i)?;
                let n = s.ld_u64(hist, k)?;
                s.st_u64(hist, k, n + 1)?;
                s.work(6)?;
            }
            // Exclusive prefix sum over the buckets.
            let mut acc = 0u64;
            for b in 0..p.max_key {
                let n = s.ld_u64(hist, b)?;
                s.st_u64(hist, b, acc)?;
                acc += n;
                s.work(4)?;
            }
            // Scatter: rank every key (write-heavy, random indices).
            for i in 0..p.keys {
                let k = s.ld_u64(keys, i)?;
                let pos = s.ld_u64(hist, k)?;
                s.st_u64(sorted, pos, k)?;
                s.st_u64(hist, k, pos + 1)?;
                s.work(8)?;
            }
            Ok(())
        })?;
        procedures += 1;

        // Partial verification on the origin (as NPB does each
        // iteration): spot-check ordering at a few positions. The early
        // return on failure keeps this per-element.
        let step = (p.keys / 7).max(1);
        {
            let mut s = c.batch()?;
            let mut i = step;
            while i < p.keys {
                let a = s.ld_u64(sorted, i - step)?;
                let b = s.ld_u64(sorted, i)?;
                if a > b {
                    return Ok(NpbOutcome { verified: false, checksum: iter as f64, procedures });
                }
                s.work(6)?;
                i += step;
            }
        }
    }

    // Full verification: the output must be a sorted permutation. The
    // scalar loop reads every element unconditionally, so it streams.
    let mut checksum = 0.0f64;
    let mut prev = 0u64;
    let mut verified = true;
    {
        let mut s = c.batch()?;
        let mut buf = [0u64; 512];
        let mut i = 0u64;
        while i < p.keys {
            let n = (p.keys - i).min(512) as usize;
            s.ld_u64_slice(sorted, i, &mut buf[..n], 5)?;
            for &k in &buf[..n] {
                if k < prev {
                    verified = false;
                }
                prev = k;
                checksum += k as f64;
            }
            i += n as u64;
        }
    }
    c.flush_work()?;
    Ok(NpbOutcome { verified, checksum, procedures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn is_sorts_correctly_without_migration() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "IS output must be sorted");
        assert_eq!(out.procedures, 2);
        assert!(out.checksum > 0.0);
    }

    #[test]
    fn is_sorts_correctly_with_migration_on_stramash() {
        let mut sys = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
        // The process ends back on the origin.
        use stramash_kernel::system::OsSystem as _;
        assert_eq!(sys.current_domain(pid).unwrap(), DomainId::X86);
    }

    #[test]
    fn is_checksum_identical_across_systems() {
        // Functional equivalence: the same sorted result regardless of
        // which OS ran it.
        let mut vanilla = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = vanilla.spawn(DomainId::X86).unwrap();
        let a = run(&mut vanilla, pid, Class::Tiny, false).unwrap();

        let mut pop = popcorn_os::PopcornSystem::new_shm(SimConfig::big_pair()).unwrap();
        let pid = pop.spawn(DomainId::X86).unwrap();
        let b = run(&mut pop, pid, Class::Tiny, true).unwrap();

        assert!(b.verified);
        assert_eq!(a.checksum, b.checksum);
    }
}
