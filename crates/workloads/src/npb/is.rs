//! IS — Integer Sort (bucket ranking).
//!
//! The write-intensive kernel: every iteration histograms the keys,
//! prefix-sums the buckets, and scatters the keys into ranked positions
//! — "integer sorting algorithms … modify the sequence of keys during
//! the procedure stage" (§9.2.1). The scatter phase's random-index
//! writes are what give Stramash its biggest win (Figure 9's 2.1×):
//! every write invalidates peer cache lines rather than replicating
//! pages.

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::{ColSpec, IndexedPlan, MemoryClient, PlanCol};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    keys: u64,
    max_key: u64,
    iterations: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { keys: 1 << 10, max_key: 1 << 7, iterations: 2 },
        // keys + ranked output = 8 MB: past the 4 MB L3, inside 32 MB.
        Class::Small => Params { keys: 1 << 19, max_key: 1 << 11, iterations: 3 },
        // 2 MB working set: between L2 and L3.
        Class::Validation => Params { keys: 1 << 17, max_key: 1 << 11, iterations: 3 },
        // 64 MB working set: exceeds even the 32 MB LLC, the regime
        // where the paper's Figure 10 IS trend lives.
        Class::Large => Params { keys: 1 << 22, max_key: 1 << 11, iterations: 2 },
    }
}

/// Runs IS. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let mut c = MemoryClient::new(sys, pid);
    let keys = c.alloc_u64(p.keys)?;
    let sorted = c.alloc_u64(p.keys)?;
    let hist = c.alloc_u64(p.max_key)?;

    // Key generation on the origin (the NPB driver phase): streamed in
    // page-sized batches (same per-element order as the scalar loop).
    let mut rng = DataRng::new(0x15_15);
    {
        let mut s = c.batch()?;
        let mut chunk = [0u64; 512];
        let mut i = 0u64;
        while i < p.keys {
            let n = (p.keys - i).min(512) as usize;
            for v in chunk[..n].iter_mut() {
                *v = rng.next_u64() % p.max_key;
            }
            s.st_u64_slice(keys, i, &chunk[..n], 8)?;
            i += n as u64;
        }
    }

    // Data-dependent plan segments for the ranking loops: the bucket
    // and rank targets are recomputed from the loaded key every call,
    // but the page translations compile once and persist across
    // iterations (a migration re-keys them automatically).
    let dense = ColSpec::Dense { stride: 1, offset: 0 };
    let bucket = ColSpec::Value { col: 0, offset: 0 };
    let mut hist_plan = IndexedPlan::new();
    let mut prefix_plan = IndexedPlan::new();
    let mut scatter_plan = IndexedPlan::new();

    let mut procedures = 0;
    for iter in 0..p.iterations {
        // One ranking procedure, offloaded per §9.2.
        offload(&mut c, migrate, |c| {
            let mut s = c.batch()?;
            // Clear the histogram.
            s.fill_u64(hist, 0, p.max_key, 0, 2)?;
            // Histogram the keys (read key, read-modify-write bucket —
            // the bucket index is the key value itself).
            s.plan_map_indexed(
                &mut hist_plan,
                &[PlanCol::u64(keys, dense), PlanCol::u64(hist, bucket)],
                &[PlanCol::u64(hist, bucket)],
                &[],
                p.keys,
                6,
                |_, rv, wv| wv[0] = rv[1] + 1,
            )?;
            // Exclusive prefix sum over the buckets.
            let mut acc = 0u64;
            s.plan_map_indexed(
                &mut prefix_plan,
                &[PlanCol::u64(hist, dense)],
                &[PlanCol::u64(hist, dense)],
                &[],
                p.max_key,
                4,
                |_, rv, wv| {
                    wv[0] = acc;
                    acc += rv[0];
                },
            )?;
            // Scatter: rank every key (write-heavy, random indices —
            // the ranked position is the bucket's running count).
            s.plan_map_indexed(
                &mut scatter_plan,
                &[PlanCol::u64(keys, dense), PlanCol::u64(hist, bucket)],
                &[
                    PlanCol::u64(sorted, ColSpec::Value { col: 1, offset: 0 }),
                    PlanCol::u64(hist, bucket),
                ],
                &[],
                p.keys,
                8,
                |_, rv, wv| {
                    wv[0] = rv[0];
                    wv[1] = rv[1] + 1;
                },
            )?;
            Ok(())
        })?;
        procedures += 1;

        // Partial verification on the origin (as NPB does each
        // iteration): spot-check ordering at a few positions. The early
        // return on failure keeps this per-element.
        let step = (p.keys / 7).max(1);
        {
            let mut s = c.batch()?;
            let mut i = step;
            while i < p.keys {
                let a = s.ld_u64(sorted, i - step)?;
                let b = s.ld_u64(sorted, i)?;
                if a > b {
                    return Ok(NpbOutcome { verified: false, checksum: iter as f64, procedures });
                }
                s.work(6)?;
                i += step;
            }
        }
    }

    // Full verification: the output must be a sorted permutation. The
    // scalar loop reads every element unconditionally, so it streams.
    let mut checksum = 0.0f64;
    let mut prev = 0u64;
    let mut verified = true;
    {
        let mut s = c.batch()?;
        let mut buf = [0u64; 512];
        let mut i = 0u64;
        while i < p.keys {
            let n = (p.keys - i).min(512) as usize;
            s.ld_u64_slice(sorted, i, &mut buf[..n], 5)?;
            for &k in &buf[..n] {
                if k < prev {
                    verified = false;
                }
                prev = k;
                checksum += k as f64;
            }
            i += n as u64;
        }
    }
    c.flush_work()?;
    Ok(NpbOutcome { verified, checksum, procedures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn is_sorts_correctly_without_migration() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "IS output must be sorted");
        assert_eq!(out.procedures, 2);
        assert!(out.checksum > 0.0);
    }

    #[test]
    fn is_sorts_correctly_with_migration_on_stramash() {
        let mut sys = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
        // The process ends back on the origin.
        use stramash_kernel::system::OsSystem as _;
        assert_eq!(sys.current_domain(pid).unwrap(), DomainId::X86);
    }

    #[test]
    fn is_checksum_identical_across_systems() {
        // Functional equivalence: the same sorted result regardless of
        // which OS ran it.
        let mut vanilla = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = vanilla.spawn(DomainId::X86).unwrap();
        let a = run(&mut vanilla, pid, Class::Tiny, false).unwrap();

        let mut pop = popcorn_os::PopcornSystem::new_shm(SimConfig::big_pair()).unwrap();
        let pid = pop.spawn(DomainId::X86).unwrap();
        let b = run(&mut pop, pid, Class::Tiny, true).unwrap();

        assert!(b.verified);
        assert_eq!(a.checksum, b.checksum);
    }
}
