//! IS — Integer Sort (bucket ranking).
//!
//! The write-intensive kernel: every iteration histograms the keys,
//! prefix-sums the buckets, and scatters the keys into ranked positions
//! — "integer sorting algorithms … modify the sequence of keys during
//! the procedure stage" (§9.2.1). The scatter phase's random-index
//! writes are what give Stramash its biggest win (Figure 9's 2.1×):
//! every write invalidates peer cache lines rather than replicating
//! pages.

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::MemoryClient;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    keys: u64,
    max_key: u64,
    iterations: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { keys: 1 << 10, max_key: 1 << 7, iterations: 2 },
        // keys + ranked output = 8 MB: past the 4 MB L3, inside 32 MB.
        Class::Small => Params { keys: 1 << 19, max_key: 1 << 11, iterations: 3 },
        // 2 MB working set: between L2 and L3.
        Class::Validation => Params { keys: 1 << 17, max_key: 1 << 11, iterations: 3 },
        // 64 MB working set: exceeds even the 32 MB LLC, the regime
        // where the paper's Figure 10 IS trend lives.
        Class::Large => Params { keys: 1 << 22, max_key: 1 << 11, iterations: 2 },
    }
}

/// Runs IS. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let mut c = MemoryClient::new(sys, pid);
    let keys = c.alloc_u64(p.keys)?;
    let sorted = c.alloc_u64(p.keys)?;
    let hist = c.alloc_u64(p.max_key)?;

    // Key generation on the origin (the NPB driver phase).
    let mut rng = DataRng::new(0x15_15);
    for i in 0..p.keys {
        c.st_u64(keys, i, rng.next_u64() % p.max_key)?;
        c.work(8)?;
    }

    let mut procedures = 0;
    for iter in 0..p.iterations {
        // One ranking procedure, offloaded per §9.2.
        offload(&mut c, migrate, |c| {
            // Clear the histogram.
            for b in 0..p.max_key {
                c.st_u64(hist, b, 0)?;
                c.work(2)?;
            }
            // Histogram the keys (read key, read-modify-write bucket).
            for i in 0..p.keys {
                let k = c.ld_u64(keys, i)?;
                let n = c.ld_u64(hist, k)?;
                c.st_u64(hist, k, n + 1)?;
                c.work(6)?;
            }
            // Exclusive prefix sum over the buckets.
            let mut acc = 0u64;
            for b in 0..p.max_key {
                let n = c.ld_u64(hist, b)?;
                c.st_u64(hist, b, acc)?;
                acc += n;
                c.work(4)?;
            }
            // Scatter: rank every key (write-heavy, random indices).
            for i in 0..p.keys {
                let k = c.ld_u64(keys, i)?;
                let pos = c.ld_u64(hist, k)?;
                c.st_u64(sorted, pos, k)?;
                c.st_u64(hist, k, pos + 1)?;
                c.work(8)?;
            }
            Ok(())
        })?;
        procedures += 1;

        // Partial verification on the origin (as NPB does each
        // iteration): spot-check ordering at a few positions.
        let step = (p.keys / 7).max(1);
        let mut i = step;
        while i < p.keys {
            let a = c.ld_u64(sorted, i - step)?;
            let b = c.ld_u64(sorted, i)?;
            if a > b {
                return Ok(NpbOutcome { verified: false, checksum: iter as f64, procedures });
            }
            c.work(6)?;
            i += step;
        }
    }

    // Full verification: the output must be a sorted permutation.
    let mut checksum = 0.0f64;
    let mut prev = 0u64;
    let mut verified = true;
    for i in 0..p.keys {
        let k = c.ld_u64(sorted, i)?;
        if k < prev {
            verified = false;
        }
        prev = k;
        checksum += k as f64;
        c.work(5)?;
    }
    c.flush_work()?;
    Ok(NpbOutcome { verified, checksum, procedures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn is_sorts_correctly_without_migration() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "IS output must be sorted");
        assert_eq!(out.procedures, 2);
        assert!(out.checksum > 0.0);
    }

    #[test]
    fn is_sorts_correctly_with_migration_on_stramash() {
        let mut sys = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
        // The process ends back on the origin.
        use stramash_kernel::system::OsSystem as _;
        assert_eq!(sys.current_domain(pid).unwrap(), DomainId::X86);
    }

    #[test]
    fn is_checksum_identical_across_systems() {
        // Functional equivalence: the same sorted result regardless of
        // which OS ran it.
        let mut vanilla = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = vanilla.spawn(DomainId::X86).unwrap();
        let a = run(&mut vanilla, pid, Class::Tiny, false).unwrap();

        let mut pop = popcorn_os::PopcornSystem::new_shm(SimConfig::big_pair()).unwrap();
        let pid = pop.spawn(DomainId::X86).unwrap();
        let b = run(&mut pop, pid, Class::Tiny, true).unwrap();

        assert!(b.verified);
        assert_eq!(a.checksum, b.checksum);
    }
}
