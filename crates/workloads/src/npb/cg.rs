//! CG — Conjugate Gradient.
//!
//! The read-intensive kernel: "numerous sparse matrix-vector
//! multiplications; 98.34 % of memory instructions are load
//! instructions" (§9.2.1). We build a random diagonally-dominant sparse
//! SPD matrix in CSR form and run real CG iterations; the indirect
//! `x[col[j]]` gathers are the loads that make Stramash's Shared and
//! Separated models struggle when the working set misses in the L3
//! (Figures 9 and 10).

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::MemoryClient;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    n: u64,
    nnz_per_row: u64,
    iterations: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { n: 128, nnz_per_row: 6, iterations: 4 },
        // Sized so the CSR matrix + vectors (~5.7 MB) exceed the 4 MB
        // L3 but fit the 32 MB one — the Figure 9/10 crossover regime.
        Class::Small => Params { n: 24_576, nnz_per_row: 12, iterations: 6 },
        // ~2.8 MB: between L2 and L3.
        Class::Validation => Params { n: 12_288, nnz_per_row: 12, iterations: 6 },
        // ~38 MB of CSR data: past both LLC sizes.
        Class::Large => Params { n: 131_072, nnz_per_row: 15, iterations: 4 },
    }
}

/// Runs CG. See [`super::run_npb`].
#[allow(clippy::many_single_char_names)] // the CG literature's names
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let nnz = p.n * p.nnz_per_row;
    let mut c = MemoryClient::new(sys, pid);
    // CSR matrix.
    let vals = c.alloc_f64(nnz)?;
    let cols = c.alloc_u64(nnz)?;
    let rowptr = c.alloc_u64(p.n + 1)?;
    // Vectors: solution x, rhs b, residual r, direction d, A*d product q.
    let x = c.alloc_f64(p.n)?;
    let b = c.alloc_f64(p.n)?;
    let r = c.alloc_f64(p.n)?;
    let d = c.alloc_f64(p.n)?;
    let q = c.alloc_f64(p.n)?;

    // Build A = off-diagonal randoms + dominant diagonal (SPD-ish) on
    // the origin. Column indices are sorted with the diagonal included.
    let mut rng = DataRng::new(0xC6);
    let mut pos = 0u64;
    for i in 0..p.n {
        c.st_u64(rowptr, i, pos)?;
        let mut row_cols = Vec::with_capacity(p.nnz_per_row as usize);
        row_cols.push(i);
        while row_cols.len() < p.nnz_per_row as usize {
            let col = rng.next_u64() % p.n;
            if !row_cols.contains(&col) {
                row_cols.push(col);
            }
        }
        row_cols.sort_unstable();
        for col in row_cols {
            let v = if col == i {
                p.nnz_per_row as f64 + 1.0 // dominant diagonal
            } else {
                -rng.next_f64() * 0.5
            };
            c.st_f64(vals, pos, v)?;
            c.st_u64(cols, pos, col)?;
            pos += 1;
            c.work(10)?;
        }
    }
    c.st_u64(rowptr, p.n, pos)?;

    // b = 1, x = 0, r = d = b.
    for i in 0..p.n {
        c.st_f64(b, i, 1.0)?;
        c.st_f64(x, i, 0.0)?;
        c.st_f64(r, i, 1.0)?;
        c.st_f64(d, i, 1.0)?;
        c.work(8)?;
    }
    let mut rho = p.n as f64; // r·r with r = 1-vector
    let rho0 = rho;

    let mut procedures = 0;
    for _ in 0..p.iterations {
        let mut rho_new = 0.0f64;
        // One CG step is one offloaded procedure.
        offload(&mut c, migrate, |c| {
            // q = A d — the load-dominated sparse matvec.
            for i in 0..p.n {
                let start = c.ld_u64(rowptr, i)?;
                let end = c.ld_u64(rowptr, i + 1)?;
                let mut acc = 0.0f64;
                for j in start..end {
                    let col = c.ld_u64(cols, j)?;
                    let v = c.ld_f64(vals, j)?;
                    let dx = c.ld_f64(d, col)?;
                    acc += v * dx;
                    c.work(6)?;
                }
                c.st_f64(q, i, acc)?;
            }
            // alpha = rho / (d·q).
            let mut dq = 0.0f64;
            for i in 0..p.n {
                dq += c.ld_f64(d, i)? * c.ld_f64(q, i)?;
                c.work(4)?;
            }
            let alpha = rho / dq;
            // x += alpha d; r -= alpha q; rho' = r·r.
            let mut acc = 0.0f64;
            for i in 0..p.n {
                let xi = c.ld_f64(x, i)? + alpha * c.ld_f64(d, i)?;
                c.st_f64(x, i, xi)?;
                let ri = c.ld_f64(r, i)? - alpha * c.ld_f64(q, i)?;
                c.st_f64(r, i, ri)?;
                acc += ri * ri;
                c.work(10)?;
            }
            rho_new = acc;
            // d = r + beta d.
            let beta = rho_new / rho;
            for i in 0..p.n {
                let di = c.ld_f64(r, i)? + beta * c.ld_f64(d, i)?;
                c.st_f64(d, i, di)?;
                c.work(5)?;
            }
            Ok(())
        })?;
        rho = rho_new;
        procedures += 1;
    }
    c.flush_work()?;

    // Verified when CG actually converged: the residual norm fell by
    // orders of magnitude.
    let verified = rho.is_finite() && rho < rho0 * 1e-3;
    Ok(NpbOutcome { verified, checksum: rho, procedures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn cg_converges_locally() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "residual must shrink: {}", out.checksum);
        assert_eq!(out.procedures, 4);
    }

    #[test]
    fn cg_converges_with_migration() {
        let mut sys = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn cg_is_load_dominated() {
        // §9.2.1: CG's memory instructions are overwhelmingly loads.
        // Our reproduction's measured phase should show a high
        // load share too (we check the L1D read bias via hit counts —
        // every access here is a data access, so compare totals).
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        run(&mut sys, pid, Class::Tiny, false).unwrap();
        use stramash_kernel::system::OsSystem as _;
        let accesses = sys.base().mem.stats(DomainId::X86).mem_accesses;
        assert!(accesses > 10_000, "CG must issue plenty of memory traffic");
    }
}
