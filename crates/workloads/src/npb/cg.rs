//! CG — Conjugate Gradient.
//!
//! The read-intensive kernel: "numerous sparse matrix-vector
//! multiplications; 98.34 % of memory instructions are load
//! instructions" (§9.2.1). We build a random diagonally-dominant sparse
//! SPD matrix in CSR form and run real CG iterations; the indirect
//! `x[col[j]]` gathers are the loads that make Stramash's Shared and
//! Separated models struggle when the working set misses in the L3
//! (Figures 9 and 10).

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::{MemoryClient, ScopePlan};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    n: u64,
    nnz_per_row: u64,
    iterations: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { n: 128, nnz_per_row: 6, iterations: 4 },
        // Sized so the CSR matrix + vectors (~5.7 MB) exceed the 4 MB
        // L3 but fit the 32 MB one — the Figure 9/10 crossover regime.
        Class::Small => Params { n: 24_576, nnz_per_row: 12, iterations: 6 },
        // ~2.8 MB: between L2 and L3.
        Class::Validation => Params { n: 12_288, nnz_per_row: 12, iterations: 6 },
        // ~38 MB of CSR data: past both LLC sizes.
        Class::Large => Params { n: 131_072, nnz_per_row: 15, iterations: 4 },
    }
}

/// Runs CG. See [`super::run_npb`].
#[allow(clippy::many_single_char_names)] // the CG literature's names
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let nnz = p.n * p.nnz_per_row;
    let mut c = MemoryClient::new(sys, pid);
    // CSR matrix.
    let vals = c.alloc_f64(nnz)?;
    let cols = c.alloc_u64(nnz)?;
    let rowptr = c.alloc_u64(p.n + 1)?;
    // Vectors: solution x, rhs b, residual r, direction d, A*d product q.
    let x = c.alloc_f64(p.n)?;
    let b = c.alloc_f64(p.n)?;
    let r = c.alloc_f64(p.n)?;
    let d = c.alloc_f64(p.n)?;
    let q = c.alloc_f64(p.n)?;

    // Build A = off-diagonal randoms + dominant diagonal (SPD-ish) on
    // the origin. Column indices are sorted with the diagonal included.
    let mut rng = DataRng::new(0xC6);
    let mut pos = 0u64;
    {
        let mut s = c.batch()?;
        for i in 0..p.n {
            s.st_u64(rowptr, i, pos)?;
            let mut row_cols = Vec::with_capacity(p.nnz_per_row as usize);
            row_cols.push(i);
            while row_cols.len() < p.nnz_per_row as usize {
                let col = rng.next_u64() % p.n;
                if !row_cols.contains(&col) {
                    row_cols.push(col);
                }
            }
            row_cols.sort_unstable();
            for col in row_cols {
                let v = if col == i {
                    p.nnz_per_row as f64 + 1.0 // dominant diagonal
                } else {
                    -rng.next_f64() * 0.5
                };
                s.st_f64(vals, pos, v)?;
                s.st_u64(cols, pos, col)?;
                pos += 1;
                s.work(10)?;
            }
        }
        s.st_u64(rowptr, p.n, pos)?;

        // b = 1, x = 0, r = d = b (interleaved across the four vectors,
        // so element ops rather than slice stores).
        for i in 0..p.n {
            s.st_f64(b, i, 1.0)?;
            s.st_f64(x, i, 0.0)?;
            s.st_f64(r, i, 1.0)?;
            s.st_f64(d, i, 1.0)?;
            s.work(8)?;
        }
    }
    let mut rho = p.n as f64; // r·r with r = 1-vector
    let rho0 = rho;

    // The two dense update loops have data-independent access patterns,
    // so their line/frame sequences compile once into plans and replay
    // each iteration (a migration bumps the TLB generation, which
    // invalidates and recompiles them on the new domain automatically).
    let mut update_plan = ScopePlan::new();
    let mut direction_plan = ScopePlan::new();

    let mut procedures = 0;
    for _ in 0..p.iterations {
        let mut rho_new = 0.0f64;
        // One CG step is one offloaded procedure.
        offload(&mut c, migrate, |c| {
            let mut s = c.batch()?;
            // q = A d — the load-dominated sparse matvec. The `d[col]`
            // gather is data-dependent, so element ops via the session.
            for i in 0..p.n {
                let start = s.ld_u64(rowptr, i)?;
                let end = s.ld_u64(rowptr, i + 1)?;
                let mut acc = 0.0f64;
                for j in start..end {
                    let col = s.ld_u64(cols, j)?;
                    let v = s.ld_f64(vals, j)?;
                    let dx = s.ld_f64(d, col)?;
                    acc += v * dx;
                    s.work(6)?;
                }
                s.st_f64(q, i, acc)?;
            }
            // alpha = rho / (d·q) — the fused dot mirrors the scalar
            // `ld d[i]; ld q[i]; work` order.
            let dq = s.dot_f64(d, q, p.n, 4)?;
            let alpha = rho / dq;
            // x += alpha d; r -= alpha q; rho' = r·r — a fixed-stride
            // four-read/two-write nest, compiled into a plan.
            let mut acc = 0.0f64;
            s.plan_map(&mut update_plan, &[x, d, r, q], &[x, r], p.n, 10, |_i, rv, wv| {
                wv[0] = rv[0] + alpha * rv[1];
                let ri = rv[2] - alpha * rv[3];
                wv[1] = ri;
                acc += ri * ri;
            })?;
            rho_new = acc;
            // d = r + beta d (reads r before d, unlike axpy's order).
            let beta = rho_new / rho;
            s.plan_map(&mut direction_plan, &[r, d], &[d], p.n, 5, |_i, rv, wv| {
                wv[0] = rv[0] + beta * rv[1];
            })?;
            Ok(())
        })?;
        rho = rho_new;
        procedures += 1;
    }
    c.flush_work()?;

    // Verified when CG actually converged: the residual norm fell by
    // orders of magnitude.
    let verified = rho.is_finite() && rho < rho0 * 1e-3;
    Ok(NpbOutcome { verified, checksum: rho, procedures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn cg_converges_locally() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "residual must shrink: {}", out.checksum);
        assert_eq!(out.procedures, 4);
    }

    #[test]
    fn cg_converges_with_migration() {
        let mut sys = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn cg_is_load_dominated() {
        // §9.2.1: CG's memory instructions are overwhelmingly loads.
        // Our reproduction's measured phase should show a high
        // load share too (we check the L1D read bias via hit counts —
        // every access here is a data access, so compare totals).
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        run(&mut sys, pid, Class::Tiny, false).unwrap();
        use stramash_kernel::system::OsSystem as _;
        let accesses = sys.base().mem.stats(DomainId::X86).mem_accesses;
        assert!(accesses > 10_000, "CG must issue plenty of memory traffic");
    }
}
