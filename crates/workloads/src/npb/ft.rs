//! FT — 3-D Fast Fourier Transform.
//!
//! Each iteration evolves the spectrum and applies an inverse 3-D FFT,
//! exactly like NPB FT's time-stepping of a PDE spectral solve. The
//! dimension-2/3 passes stride across the array, touching many pages
//! per pass — which is why FT shows the highest residual replication
//! count for Stramash in Table 3 (sparse first touches keep missing
//! upper-level page-table chains).
//!
//! Verification is end-to-end: `inverse_fft(evolve⁻¹(evolve(fft(x))))`
//! must reproduce the initial data within floating-point tolerance.

use super::{offload, Class, DataRng, NpbOutcome};
use crate::client::{ArrayF64, ColSpec, IndexedPlan, MemoryClient, PlanCol};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    /// Edge length (power of two).
    n: u64,
    iterations: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { n: 8, iterations: 1 },
        Class::Small => Params { n: 16, iterations: 2 },
        // 32³ complex grid = 1 MB, strided hard across it.
        Class::Validation => Params { n: 32, iterations: 1 },
        // 64³ complex grid = 4 MB in flight with heavily strided passes.
        Class::Large => Params { n: 64, iterations: 1 },
    }
}

/// Interleaved complex array: element `i` occupies slots `2i` (re) and
/// `2i + 1` (im).
#[derive(Clone, Copy)]
struct ComplexGrid {
    n: u64,
    data: ArrayF64,
}

impl ComplexGrid {
    fn slot(&self, x: u64, y: u64, z: u64) -> u64 {
        2 * ((z * self.n + y) * self.n + x)
    }
}

/// The data-dependent plan segments behind every FT inner loop. All
/// columns range over the one grid array, so the two plans' page tables
/// compile lazily on the first lines of the first pass and replay for
/// the rest of the transform.
#[derive(Default)]
struct FtPlans {
    /// 4 reads + 4 writes: butterfly and bit-reversal pair swaps.
    pairs: IndexedPlan,
    /// 2 reads + 2 writes: phase rotation and inverse scaling.
    elems: IndexedPlan,
}

/// The (re, im) column pair of `data` driven by index slice `sl` (each
/// slice value is a complex element's re slot; im follows at +1).
fn complex_cols(data: ArrayF64, sl: usize) -> [PlanCol; 2] {
    [
        PlanCol::f64(data, ColSpec::Index { slice: sl, offset: 0 }),
        PlanCol::f64(data, ColSpec::Index { slice: sl, offset: 1 }),
    ]
}

/// Runs FT. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let cells = p.n * p.n * p.n;
    let mut c = MemoryClient::new(sys, pid);
    let grid = ComplexGrid { n: p.n, data: c.alloc_f64(cells * 2)? };

    // Initial pseudo-random field, kept host-side for verification.
    let mut rng = DataRng::new(0xF7);
    let mut initial = Vec::with_capacity((cells * 2) as usize);
    {
        let mut s = c.batch()?;
        for i in 0..cells {
            let re = rng.next_f64() - 0.5;
            let im = rng.next_f64() - 0.5;
            s.st_f64_pair(grid.data, 2 * i, re, im)?;
            initial.push(re);
            initial.push(im);
            s.work(10)?;
        }
    }

    let mut procedures = 0;
    let evolve_phase = 0.37f64;
    let mut plans = FtPlans::default();
    for _ in 0..p.iterations {
        offload(&mut c, migrate, |c| {
            // Forward 3-D FFT.
            fft3d(c, grid, false, &mut plans)?;
            // Evolve: rotate every mode by a fixed phase (unit modulus,
            // trivially invertible — NPB uses exp(-4π²t|k|²)).
            apply_phase(c, grid, evolve_phase, &mut plans)?;
            // Undo the evolution and invert the transform so the result
            // is checkable against the initial field.
            apply_phase(c, grid, -evolve_phase, &mut plans)?;
            fft3d(c, grid, true, &mut plans)?;
            Ok(())
        })?;
        procedures += 1;
    }

    // Checksum + end-to-end verification on the origin: a pure
    // sequential read, so it streams through the batch path.
    let mut checksum = 0.0f64;
    let mut max_err = 0.0f64;
    {
        let mut s = c.batch()?;
        let mut buf = vec![0.0f64; 512];
        let total = cells * 2;
        let mut i = 0u64;
        while i < total {
            let n = (total - i).min(512) as usize;
            s.ld_f64_slice(grid.data, i, &mut buf[..n], 6)?;
            for (k, &v) in buf[..n].iter().enumerate() {
                checksum += v;
                max_err = max_err.max((v - initial[(i + k as u64) as usize]).abs());
            }
            i += n as u64;
        }
    }
    c.flush_work()?;
    Ok(NpbOutcome { verified: max_err < 1e-9, checksum, procedures })
}

/// Multiplies every element by `e^{iθ}` where θ = `phase`.
fn apply_phase<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    g: ComplexGrid,
    phase: f64,
    plans: &mut FtPlans,
) -> Result<(), OsError> {
    let (sin, cos) = phase.sin_cos();
    let cells = g.n * g.n * g.n;
    let cols = [
        PlanCol::f64(g.data, ColSpec::Dense { stride: 2, offset: 0 }),
        PlanCol::f64(g.data, ColSpec::Dense { stride: 2, offset: 1 }),
    ];
    let mut s = c.batch()?;
    s.plan_map_indexed(&mut plans.elems, &cols, &cols, &[], cells, 10, |_, rv, wv| {
        let re = f64::from_bits(rv[0]);
        let im = f64::from_bits(rv[1]);
        wv[0] = (re * cos - im * sin).to_bits();
        wv[1] = (re * sin + im * cos).to_bits();
    })
}

/// In-place 3-D FFT: 1-D transforms along x, then y, then z.
fn fft3d<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    g: ComplexGrid,
    inverse: bool,
    plans: &mut FtPlans,
) -> Result<(), OsError> {
    let n = g.n;
    // Along x (unit stride).
    for z in 0..n {
        for y in 0..n {
            let slots: Vec<u64> = (0..n).map(|x| g.slot(x, y, z)).collect();
            fft1d(c, g.data, &slots, inverse, plans)?;
        }
    }
    // Along y (stride n).
    for z in 0..n {
        for x in 0..n {
            let slots: Vec<u64> = (0..n).map(|y| g.slot(x, y, z)).collect();
            fft1d(c, g.data, &slots, inverse, plans)?;
        }
    }
    // Along z (stride n²).
    for y in 0..n {
        for x in 0..n {
            let slots: Vec<u64> = (0..n).map(|z| g.slot(x, y, z)).collect();
            fft1d(c, g.data, &slots, inverse, plans)?;
        }
    }
    Ok(())
}

/// Iterative radix-2 Cooley–Tukey over the elements at `slots` (each
/// slot is the re index; im follows at slot + 1). Every loop runs as a
/// data-dependent plan segment: the pair targets move line to line and
/// stage to stage, but the translations replay from the shared plans.
fn fft1d<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    data: ArrayF64,
    slots: &[u64],
    inverse: bool,
    plans: &mut FtPlans,
) -> Result<(), OsError> {
    let n = slots.len();
    debug_assert!(n.is_power_of_two());
    let ab: Vec<PlanCol> =
        complex_cols(data, 0).into_iter().chain(complex_cols(data, 1)).collect();
    let mut s = c.batch()?;
    // Bit-reversal permutation: collect the swap pairs, then exchange
    // them through the pair segment.
    let mut swap_a = Vec::new();
    let mut swap_b = Vec::new();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            swap_a.push(slots[i]);
            swap_b.push(slots[j]);
        }
    }
    s.plan_map_indexed(
        &mut plans.pairs,
        &ab,
        &ab,
        &[&swap_a, &swap_b],
        swap_a.len() as u64,
        12,
        |_, rv, wv| {
            wv[0] = rv[2];
            wv[1] = rv[3];
            wv[2] = rv[0];
            wv[3] = rv[1];
        },
    )?;
    // Butterflies: one flattened segment per stage, the twiddle
    // recurrence carried element-major in the closure (reset at each
    // block boundary, exactly like the nested scalar loops).
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut av: Vec<u64> = Vec::with_capacity(n / 2);
    let mut bv: Vec<u64> = Vec::with_capacity(n / 2);
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wsin, wcos) = ang.sin_cos();
        av.clear();
        bv.clear();
        let mut start = 0usize;
        while start < n {
            for k in 0..len / 2 {
                av.push(slots[start + k]);
                bv.push(slots[start + k + len / 2]);
            }
            start += len;
        }
        let half = (len / 2) as u64;
        let mut wr = 1.0f64;
        let mut wi = 0.0f64;
        s.plan_map_indexed(
            &mut plans.pairs,
            &ab,
            &ab,
            &[&av, &bv],
            av.len() as u64,
            20,
            |i, rv, wv| {
                if i % half == 0 {
                    wr = 1.0;
                    wi = 0.0;
                }
                let ar = f64::from_bits(rv[0]);
                let ai = f64::from_bits(rv[1]);
                let br = f64::from_bits(rv[2]);
                let bi = f64::from_bits(rv[3]);
                let tr = br * wr - bi * wi;
                let ti = br * wi + bi * wr;
                wv[0] = (ar + tr).to_bits();
                wv[1] = (ai + ti).to_bits();
                wv[2] = (ar - tr).to_bits();
                wv[3] = (ai - ti).to_bits();
                let nwr = wr * wcos - wi * wsin;
                wi = wr * wsin + wi * wcos;
                wr = nwr;
            },
        )?;
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        let cols = complex_cols(data, 0);
        s.plan_map_indexed(&mut plans.elems, &cols, &cols, &[slots], n as u64, 8, |_, rv, wv| {
            wv[0] = (f64::from_bits(rv[0]) * inv).to_bits();
            wv[1] = (f64::from_bits(rv[1]) * inv).to_bits();
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn ft_roundtrips_locally() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "FFT round-trip must recover the input");
        assert_eq!(out.procedures, 1);
    }

    #[test]
    fn ft_roundtrips_with_migration() {
        let mut sys = stramash::StramashSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn fft1d_matches_direct_dft() {
        // Check the butterfly network against a brute-force DFT on a
        // small vector, through the Vanilla system.
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let mut c = MemoryClient::new(&mut sys, pid);
        let data = c.alloc_f64(16).unwrap();
        let input: Vec<(f64, f64)> =
            (0..8).map(|i| ((i as f64).sin(), (i as f64 * 0.3).cos())).collect();
        for (i, &(re, im)) in input.iter().enumerate() {
            c.st_f64(data, 2 * i as u64, re).unwrap();
            c.st_f64(data, 2 * i as u64 + 1, im).unwrap();
        }
        let slots: Vec<u64> = (0..8).map(|i| 2 * i).collect();
        fft1d(&mut c, data, &slots, false, &mut FtPlans::default()).unwrap();
        // Direct DFT of bin 3.
        let k = 3;
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &(xr, xi)) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / 8.0;
            re += xr * ang.cos() - xi * ang.sin();
            im += xr * ang.sin() + xi * ang.cos();
        }
        let got_re = c.ld_f64(data, 2 * k as u64).unwrap();
        let got_im = c.ld_f64(data, 2 * k as u64 + 1).unwrap();
        assert!((got_re - re).abs() < 1e-9, "{got_re} vs {re}");
        assert!((got_im - im).abs() < 1e-9, "{got_im} vs {im}");
    }
}
