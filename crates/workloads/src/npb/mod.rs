//! NAS Parallel Benchmark kernels (§8.3), reimplemented to run *through*
//! the simulated system.
//!
//! The paper evaluates IS, CG, MG and FT because "NPB has different
//! memory access patterns, including read and write intensive
//! workloads": CG is ~98 % loads (sparse matrix–vector products), IS is
//! write-intensive (integer ranking), MG and FT sit in between. The
//! reproductions are functional — IS really sorts, CG really converges,
//! MG really reduces the residual, FT really inverts its transform — so
//! the access patterns are the algorithms' own, not replayed traces.
//!
//! Migration follows §9.2: "there is a migration and back-migration for
//! each processing procedure (similarly to offloading)" — each compute
//! procedure runs on the Arm domain and control returns to x86.

pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod mg;

use crate::client::MemoryClient;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};
use stramash_sim::DomainId;
use std::fmt;

/// Which NPB kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbKind {
    /// Integer Sort — write-intensive bucket ranking.
    Is,
    /// Conjugate Gradient — read-intensive sparse solves.
    Cg,
    /// MultiGrid — 3-D V-cycles.
    Mg,
    /// Fourier Transform — 3-D FFT with evolve steps.
    Ft,
    /// Embarrassingly Parallel — the compute-bound control kernel
    /// (listed in §8.3's NPB reference; not in the paper's figures).
    Ep,
}

impl NpbKind {
    /// The four kernels the paper's figures evaluate, in their order.
    pub const ALL: [NpbKind; 4] = [NpbKind::Is, NpbKind::Cg, NpbKind::Mg, NpbKind::Ft];

    /// The extended set including the compute-bound EP control.
    pub const EXTENDED: [NpbKind; 5] =
        [NpbKind::Is, NpbKind::Cg, NpbKind::Mg, NpbKind::Ft, NpbKind::Ep];
}

impl fmt::Display for NpbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpbKind::Is => f.write_str("IS"),
            NpbKind::Cg => f.write_str("CG"),
            NpbKind::Mg => f.write_str("MG"),
            NpbKind::Ft => f.write_str("FT"),
            NpbKind::Ep => f.write_str("EP"),
        }
    }
}

/// Problem-size class (scaled down from the NPB classes so a software
/// simulator finishes in seconds; the access *patterns* are unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// For unit tests: finishes in milliseconds.
    Tiny,
    /// For the benchmark harness: exercises the caches properly.
    Small,
    /// For the Figure 7/8 simulator-validation benches: working sets
    /// between the 1 MB L2 and the 4 MB L3, so every cache level sees
    /// meaningful, stable hit rates (the regime the paper's validation
    /// figures operate in, away from pathological LLC thrash).
    Validation,
    /// Working sets beyond even the 32 MB LLC — the regime of the
    /// paper's real NPB classes. Minutes of host time per run; opt-in
    /// (`STRAMASH_LARGE=1` for the Figure 10 bench, `--class large` in
    /// the CLI).
    Large,
}

/// Outcome of one NPB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpbOutcome {
    /// Whether the kernel's own verification passed.
    pub verified: bool,
    /// A kernel-specific checksum (for cross-system result equality).
    pub checksum: f64,
    /// Number of offloaded procedures executed.
    pub procedures: u32,
}

/// Runs one kernel on `sys` for process `pid`.
///
/// With `migrate`, each processing procedure is offloaded to the Arm
/// domain and back; without, everything runs on the origin (the Vanilla
/// normalisation case).
///
/// # Errors
///
/// Propagates OS errors (OOM, migration failures).
pub fn run_npb<S: OsSystem>(
    kind: NpbKind,
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    match kind {
        NpbKind::Is => is::run(sys, pid, class, migrate),
        NpbKind::Cg => cg::run(sys, pid, class, migrate),
        NpbKind::Mg => mg::run(sys, pid, class, migrate),
        NpbKind::Ft => ft::run(sys, pid, class, migrate),
        NpbKind::Ep => ep::run(sys, pid, class, migrate),
    }
}

/// Offloads one processing procedure: migrate to Arm, run `f`, migrate
/// back (§9.2: "a migration and back-migration for each processing
/// procedure").
pub(crate) fn offload<S: OsSystem>(
    client: &mut MemoryClient<'_, S>,
    migrate: bool,
    f: impl FnOnce(&mut MemoryClient<'_, S>) -> Result<(), OsError>,
) -> Result<(), OsError> {
    if migrate {
        client.migrate(DomainId::ARM)?;
    }
    f(client)?;
    if migrate {
        client.migrate(DomainId::X86)?;
    }
    Ok(())
}

/// Deterministic pseudo-random stream for workload data (host-side; the
/// generated values are then *stored through* the simulator).
pub(crate) struct DataRng(u64);

impl DataRng {
    pub(crate) fn new(seed: u64) -> Self {
        DataRng(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(NpbKind::Is.to_string(), "IS");
        assert_eq!(NpbKind::ALL.len(), 4);
    }

    #[test]
    fn data_rng_is_deterministic() {
        let mut a = DataRng::new(5);
        let mut b = DataRng::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = DataRng::new(9).next_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
