//! MG — MultiGrid.
//!
//! V-cycles on a 3-D Poisson problem: residual evaluation with a 7-point
//! stencil, restriction to a coarser grid, smoothing, prolongation and
//! correction. The large strided sweeps over 3-D arrays generate the
//! streaming access pattern (and the huge Popcorn message counts of
//! Table 3 — every remotely-touched page is replicated).

use super::{offload, Class, NpbOutcome};
use crate::client::{ArrayF64, MemoryClient};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    /// Fine-grid edge length (power of two).
    n: u64,
    /// V-cycles to run.
    cycles: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { n: 8, cycles: 2 },
        Class::Small => Params { n: 16, cycles: 3 },
        // 32³ fine grid ≈ 2.2 MB of level data (3 arrays + coarser levels).
        Class::Validation => Params { n: 32, cycles: 2 },
        // 64³ fine grid ≈ 19 MB of level data.
        Class::Large => Params { n: 64, cycles: 2 },
    }
}

/// 3-D index into an `n`³ grid stored x-fastest.
fn idx(n: u64, x: u64, y: u64, z: u64) -> u64 {
    (z * n + y) * n + x
}

/// One grid level: the solution `u`, right-hand side `v` and residual
/// `r` arrays plus the edge length.
#[derive(Clone, Copy)]
struct Level {
    n: u64,
    u: ArrayF64,
    v: ArrayF64,
    r: ArrayF64,
}

/// Runs MG. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let mut c = MemoryClient::new(sys, pid);

    // Build the level hierarchy down to 4³.
    let mut levels = Vec::new();
    let mut n = p.n;
    while n >= 4 {
        let cells = n * n * n;
        levels.push(Level {
            n,
            u: c.alloc_f64(cells)?,
            v: c.alloc_f64(cells)?,
            r: c.alloc_f64(cells)?,
        });
        n /= 2;
    }

    // Initial state on the origin: u = 0 everywhere; v has two point
    // charges (the classic MG test problem).
    let fine = levels[0];
    {
        let mut s = c.batch()?;
        for i in 0..fine.n * fine.n * fine.n {
            s.st_f64(fine.u, i, 0.0)?;
            s.st_f64(fine.v, i, 0.0)?;
            s.work(4)?;
        }
        let q = fine.n / 4;
        s.st_f64(fine.v, idx(fine.n, q, q, q), 1.0)?;
        s.st_f64(fine.v, idx(fine.n, 3 * q, 3 * q, 3 * q), -1.0)?;
    }

    let initial = residual_norm(&mut c, fine)?;
    let mut procedures = 0;

    for _ in 0..p.cycles {
        let lv = levels.clone();
        offload(&mut c, migrate, |c| v_cycle(c, &lv, 0))?;
        procedures += 1;
    }
    let final_norm = residual_norm(&mut c, fine)?;
    c.flush_work()?;

    let verified = final_norm.is_finite() && final_norm < initial * 0.6;
    Ok(NpbOutcome { verified, checksum: final_norm, procedures })
}

/// residual r = v − A u with the 7-point Laplacian, interior cells only.
fn compute_residual<S: OsSystem>(c: &mut MemoryClient<'_, S>, l: Level) -> Result<(), OsError> {
    let n = l.n;
    let mut s = c.batch()?;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let i = idx(n, x, y, z);
                if x == 0 || y == 0 || z == 0 || x == n - 1 || y == n - 1 || z == n - 1 {
                    s.st_f64(l.r, i, 0.0)?;
                    continue;
                }
                let center = s.ld_f64(l.u, i)?;
                let sum = s.ld_f64(l.u, idx(n, x - 1, y, z))?
                    + s.ld_f64(l.u, idx(n, x + 1, y, z))?
                    + s.ld_f64(l.u, idx(n, x, y - 1, z))?
                    + s.ld_f64(l.u, idx(n, x, y + 1, z))?
                    + s.ld_f64(l.u, idx(n, x, y, z - 1))?
                    + s.ld_f64(l.u, idx(n, x, y, z + 1))?;
                let au = 6.0 * center - sum;
                let v = s.ld_f64(l.v, i)?;
                s.st_f64(l.r, i, v - au)?;
                s.work(16)?;
            }
        }
    }
    Ok(())
}

/// Weighted-Jacobi smoothing sweeps.
fn smooth<S: OsSystem>(c: &mut MemoryClient<'_, S>, l: Level, sweeps: u32) -> Result<(), OsError> {
    let n = l.n;
    let omega = 0.8;
    let mut s = c.batch()?;
    for _ in 0..sweeps {
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = idx(n, x, y, z);
                    let sum = s.ld_f64(l.u, idx(n, x - 1, y, z))?
                        + s.ld_f64(l.u, idx(n, x + 1, y, z))?
                        + s.ld_f64(l.u, idx(n, x, y - 1, z))?
                        + s.ld_f64(l.u, idx(n, x, y + 1, z))?
                        + s.ld_f64(l.u, idx(n, x, y, z - 1))?
                        + s.ld_f64(l.u, idx(n, x, y, z + 1))?;
                    let v = s.ld_f64(l.v, i)?;
                    let old = s.ld_f64(l.u, i)?;
                    let jac = (v + sum) / 6.0;
                    s.st_f64(l.u, i, old + omega * (jac - old))?;
                    s.work(18)?;
                }
            }
        }
    }
    Ok(())
}

/// One V-cycle at `depth`.
fn v_cycle<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    levels: &[Level],
    depth: usize,
) -> Result<(), OsError> {
    let l = levels[depth];
    if depth + 1 == levels.len() {
        // Coarsest level: solve by heavy smoothing.
        smooth(c, l, 8)?;
        return Ok(());
    }
    smooth(c, l, 2)?;
    compute_residual(c, l)?;
    // Restrict r to the coarser grid's v (injection of even cells).
    let coarse = levels[depth + 1];
    let cn = coarse.n;
    {
        let mut s = c.batch()?;
        for z in 0..cn {
            for y in 0..cn {
                for x in 0..cn {
                    let r = s.ld_f64(l.r, idx(l.n, x * 2, y * 2, z * 2))?;
                    s.st_f64(coarse.v, idx(cn, x, y, z), r)?;
                    s.st_f64(coarse.u, idx(cn, x, y, z), 0.0)?;
                    s.work(8)?;
                }
            }
        }
    }
    v_cycle(c, levels, depth + 1)?;
    // Prolongate the coarse correction and add it in.
    {
        let mut s = c.batch()?;
        for z in 1..l.n - 1 {
            for y in 1..l.n - 1 {
                for x in 1..l.n - 1 {
                    let e = s.ld_f64(coarse.u, idx(cn, x / 2, y / 2, z / 2))?;
                    let i = idx(l.n, x, y, z);
                    let u = s.ld_f64(l.u, i)?;
                    s.st_f64(l.u, i, u + e)?;
                    s.work(8)?;
                }
            }
        }
    }
    smooth(c, l, 2)?;
    Ok(())
}

/// ‖v − A u‖₂ on the fine grid.
fn residual_norm<S: OsSystem>(c: &mut MemoryClient<'_, S>, l: Level) -> Result<f64, OsError> {
    compute_residual(c, l)?;
    // The norm reduction reads r sequentially — a streaming batch.
    let mut acc = 0.0;
    let mut s = c.batch()?;
    let cells = l.n * l.n * l.n;
    let mut buf = vec![0.0f64; 512];
    let mut i = 0u64;
    while i < cells {
        let n = (cells - i).min(512) as usize;
        s.ld_f64_slice(l.r, i, &mut buf[..n], 4)?;
        for &r in &buf[..n] {
            acc += r * r;
        }
        i += n as u64;
    }
    Ok(acc.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn mg_reduces_residual_locally() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "V-cycles must reduce the residual: {}", out.checksum);
        assert_eq!(out.procedures, 2);
    }

    #[test]
    fn mg_reduces_residual_with_migration() {
        let mut sys = popcorn_os::PopcornSystem::new_shm(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
        assert!(sys.replicated_pages(pid) > 0, "Popcorn must have replicated grid pages");
    }

    #[test]
    fn idx_is_x_fastest() {
        assert_eq!(idx(8, 0, 0, 0), 0);
        assert_eq!(idx(8, 1, 0, 0), 1);
        assert_eq!(idx(8, 0, 1, 0), 8);
        assert_eq!(idx(8, 0, 0, 1), 64);
    }
}
