//! MG — MultiGrid.
//!
//! V-cycles on a 3-D Poisson problem: residual evaluation with a 7-point
//! stencil, restriction to a coarser grid, smoothing, prolongation and
//! correction. The large strided sweeps over 3-D arrays generate the
//! streaming access pattern (and the huge Popcorn message counts of
//! Table 3 — every remotely-touched page is replicated).

use super::{offload, Class, NpbOutcome};
use crate::client::{ArrayF64, ColSpec, IndexedPlan, MemoryClient, PlanCol};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};

struct Params {
    /// Fine-grid edge length (power of two).
    n: u64,
    /// V-cycles to run.
    cycles: u32,
}

fn params(class: Class) -> Params {
    match class {
        Class::Tiny => Params { n: 8, cycles: 2 },
        Class::Small => Params { n: 16, cycles: 3 },
        // 32³ fine grid ≈ 2.2 MB of level data (3 arrays + coarser levels).
        Class::Validation => Params { n: 32, cycles: 2 },
        // 64³ fine grid ≈ 19 MB of level data.
        Class::Large => Params { n: 64, cycles: 2 },
    }
}

/// 3-D index into an `n`³ grid stored x-fastest.
fn idx(n: u64, x: u64, y: u64, z: u64) -> u64 {
    (z * n + y) * n + x
}

/// One grid level: the solution `u`, right-hand side `v` and residual
/// `r` arrays plus the edge length.
#[derive(Clone, Copy)]
struct Level {
    n: u64,
    u: ArrayF64,
    v: ArrayF64,
    r: ArrayF64,
}

/// Host-side loop structure for one level: the cell-index slices that
/// drive the data-dependent plan segments, plus the compiled plans
/// themselves (translations persist across sweeps and V-cycles).
struct LevelAux {
    /// Interior cell indices in z,y,x traversal order.
    interior: Vec<u64>,
    /// Boundary cell indices in z,y,x traversal order.
    boundary: Vec<u64>,
    /// Fine-grid source index per coarse cell (restriction injection).
    restrict_src: Vec<u64>,
    /// Coarse-grid source index per interior fine cell (prolongation).
    prolong_src: Vec<u64>,
    residual_b: IndexedPlan,
    residual_i: IndexedPlan,
    smooth: IndexedPlan,
    restrict: IndexedPlan,
    prolong: IndexedPlan,
}

impl LevelAux {
    fn new(n: u64, coarse_n: Option<u64>) -> Self {
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = idx(n, x, y, z);
                    if x == 0 || y == 0 || z == 0 || x == n - 1 || y == n - 1 || z == n - 1 {
                        boundary.push(i);
                    } else {
                        interior.push(i);
                    }
                }
            }
        }
        let mut restrict_src = Vec::new();
        let mut prolong_src = Vec::new();
        if let Some(cn) = coarse_n {
            for z in 0..cn {
                for y in 0..cn {
                    for x in 0..cn {
                        restrict_src.push(idx(n, x * 2, y * 2, z * 2));
                    }
                }
            }
            for z in 1..n - 1 {
                for y in 1..n - 1 {
                    for x in 1..n - 1 {
                        prolong_src.push(idx(cn, x / 2, y / 2, z / 2));
                    }
                }
            }
        }
        LevelAux {
            interior,
            boundary,
            restrict_src,
            prolong_src,
            residual_b: IndexedPlan::new(),
            residual_i: IndexedPlan::new(),
            smooth: IndexedPlan::new(),
            restrict: IndexedPlan::new(),
            prolong: IndexedPlan::new(),
        }
    }
}

/// The 7-point stencil's read columns over `u`, all driven by the
/// interior-cell index slice: center, ±x, ±y, ±z neighbours.
fn stencil_cols(u: ArrayF64, n: u64) -> [PlanCol; 7] {
    let at = |off: i64| PlanCol::f64(u, ColSpec::Index { slice: 0, offset: off });
    let n = n as i64;
    [at(0), at(-1), at(1), at(-n), at(n), at(-n * n), at(n * n)]
}

/// Runs MG. See [`super::run_npb`].
pub fn run<S: OsSystem>(
    sys: &mut S,
    pid: Pid,
    class: Class,
    migrate: bool,
) -> Result<NpbOutcome, OsError> {
    let p = params(class);
    let mut c = MemoryClient::new(sys, pid);

    // Build the level hierarchy down to 4³.
    let mut levels = Vec::new();
    let mut n = p.n;
    while n >= 4 {
        let cells = n * n * n;
        levels.push(Level {
            n,
            u: c.alloc_f64(cells)?,
            v: c.alloc_f64(cells)?,
            r: c.alloc_f64(cells)?,
        });
        n /= 2;
    }

    // Initial state on the origin: u = 0 everywhere; v has two point
    // charges (the classic MG test problem).
    let fine = levels[0];
    {
        let mut s = c.batch()?;
        for i in 0..fine.n * fine.n * fine.n {
            s.st_f64(fine.u, i, 0.0)?;
            s.st_f64(fine.v, i, 0.0)?;
            s.work(4)?;
        }
        let q = fine.n / 4;
        s.st_f64(fine.v, idx(fine.n, q, q, q), 1.0)?;
        s.st_f64(fine.v, idx(fine.n, 3 * q, 3 * q, 3 * q), -1.0)?;
    }

    // Host-side loop structure per level: index slices + plan segments.
    let mut aux: Vec<LevelAux> = (0..levels.len())
        .map(|d| LevelAux::new(levels[d].n, levels.get(d + 1).map(|l| l.n)))
        .collect();

    let initial = residual_norm(&mut c, fine, &mut aux[0])?;
    let mut procedures = 0;

    for _ in 0..p.cycles {
        let lv = levels.clone();
        offload(&mut c, migrate, |c| v_cycle(c, &lv, &mut aux, 0))?;
        procedures += 1;
    }
    let final_norm = residual_norm(&mut c, fine, &mut aux[0])?;
    c.flush_work()?;

    let verified = final_norm.is_finite() && final_norm < initial * 0.6;
    Ok(NpbOutcome { verified, checksum: final_norm, procedures })
}

/// residual r = v − A u with the 7-point Laplacian: a boundary-clear
/// pass, then the interior stencil as an indexed plan segment (the
/// neighbour offsets ride the interior-cell index slice).
fn compute_residual<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    l: Level,
    aux: &mut LevelAux,
) -> Result<(), OsError> {
    let cell = ColSpec::Index { slice: 0, offset: 0 };
    let mut s = c.batch()?;
    s.plan_map_indexed(
        &mut aux.residual_b,
        &[],
        &[PlanCol::f64(l.r, cell)],
        &[&aux.boundary],
        aux.boundary.len() as u64,
        0,
        |_, _, wv| wv[0] = 0.0f64.to_bits(),
    )?;
    let mut reads: Vec<PlanCol> = stencil_cols(l.u, l.n).to_vec();
    reads.push(PlanCol::f64(l.v, cell));
    s.plan_map_indexed(
        &mut aux.residual_i,
        &reads,
        &[PlanCol::f64(l.r, cell)],
        &[&aux.interior],
        aux.interior.len() as u64,
        16,
        |_, rv, wv| {
            let center = f64::from_bits(rv[0]);
            let sum = f64::from_bits(rv[1])
                + f64::from_bits(rv[2])
                + f64::from_bits(rv[3])
                + f64::from_bits(rv[4])
                + f64::from_bits(rv[5])
                + f64::from_bits(rv[6]);
            let au = 6.0 * center - sum;
            let v = f64::from_bits(rv[7]);
            wv[0] = (v - au).to_bits();
        },
    )?;
    Ok(())
}

/// Weighted-Jacobi smoothing sweeps as an indexed plan segment: in-place
/// over `u`, so each element's neighbour reads see earlier elements'
/// writes exactly as the scalar sweep would.
fn smooth<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    l: Level,
    aux: &mut LevelAux,
    sweeps: u32,
) -> Result<(), OsError> {
    let omega = 0.8;
    let mut reads: Vec<PlanCol> = stencil_cols(l.u, l.n).to_vec();
    reads.push(PlanCol::f64(l.v, ColSpec::Index { slice: 0, offset: 0 }));
    let mut s = c.batch()?;
    for _ in 0..sweeps {
        s.plan_map_indexed(
            &mut aux.smooth,
            &reads,
            &[PlanCol::f64(l.u, ColSpec::Index { slice: 0, offset: 0 })],
            &[&aux.interior],
            aux.interior.len() as u64,
            18,
            |_, rv, wv| {
                let old = f64::from_bits(rv[0]);
                let sum = f64::from_bits(rv[1])
                    + f64::from_bits(rv[2])
                    + f64::from_bits(rv[3])
                    + f64::from_bits(rv[4])
                    + f64::from_bits(rv[5])
                    + f64::from_bits(rv[6]);
                let v = f64::from_bits(rv[7]);
                let jac = (v + sum) / 6.0;
                wv[0] = (old + omega * (jac - old)).to_bits();
            },
        )?;
    }
    Ok(())
}

/// One V-cycle at `depth`.
fn v_cycle<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    levels: &[Level],
    aux: &mut [LevelAux],
    depth: usize,
) -> Result<(), OsError> {
    let l = levels[depth];
    if depth + 1 == levels.len() {
        // Coarsest level: solve by heavy smoothing.
        smooth(c, l, &mut aux[depth], 8)?;
        return Ok(());
    }
    smooth(c, l, &mut aux[depth], 2)?;
    compute_residual(c, l, &mut aux[depth])?;
    // Restrict r to the coarser grid's v (injection of even cells): the
    // fine-grid gather indices ride the restriction index slice.
    let coarse = levels[depth + 1];
    {
        let a = &mut aux[depth];
        let mut s = c.batch()?;
        let dense = ColSpec::Dense { stride: 1, offset: 0 };
        s.plan_map_indexed(
            &mut a.restrict,
            &[PlanCol::f64(l.r, ColSpec::Index { slice: 0, offset: 0 })],
            &[PlanCol::f64(coarse.v, dense), PlanCol::f64(coarse.u, dense)],
            &[&a.restrict_src],
            a.restrict_src.len() as u64,
            8,
            |_, rv, wv| {
                wv[0] = rv[0];
                wv[1] = 0.0f64.to_bits();
            },
        )?;
    }
    v_cycle(c, levels, aux, depth + 1)?;
    // Prolongate the coarse correction and add it in: the coarse-cell
    // gather indices ride their own slice alongside the interior one.
    {
        let a = &mut aux[depth];
        let mut s = c.batch()?;
        let cell = ColSpec::Index { slice: 0, offset: 0 };
        s.plan_map_indexed(
            &mut a.prolong,
            &[
                PlanCol::f64(coarse.u, ColSpec::Index { slice: 1, offset: 0 }),
                PlanCol::f64(l.u, cell),
            ],
            &[PlanCol::f64(l.u, cell)],
            &[&a.interior, &a.prolong_src],
            a.interior.len() as u64,
            8,
            |_, rv, wv| {
                let e = f64::from_bits(rv[0]);
                let u = f64::from_bits(rv[1]);
                wv[0] = (u + e).to_bits();
            },
        )?;
    }
    smooth(c, l, &mut aux[depth], 2)?;
    Ok(())
}

/// ‖v − A u‖₂ on the fine grid.
fn residual_norm<S: OsSystem>(
    c: &mut MemoryClient<'_, S>,
    l: Level,
    aux: &mut LevelAux,
) -> Result<f64, OsError> {
    compute_residual(c, l, aux)?;
    // The norm reduction reads r sequentially — a streaming batch.
    let mut acc = 0.0;
    let mut s = c.batch()?;
    let cells = l.n * l.n * l.n;
    let mut buf = vec![0.0f64; 512];
    let mut i = 0u64;
    while i < cells {
        let n = (cells - i).min(512) as usize;
        s.ld_f64_slice(l.r, i, &mut buf[..n], 4)?;
        for &r in &buf[..n] {
            acc += r * r;
        }
        i += n as u64;
    }
    Ok(acc.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::{DomainId, SimConfig};

    #[test]
    fn mg_reduces_residual_locally() {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, false).unwrap();
        assert!(out.verified, "V-cycles must reduce the residual: {}", out.checksum);
        assert_eq!(out.procedures, 2);
    }

    #[test]
    fn mg_reduces_residual_with_migration() {
        let mut sys = popcorn_os::PopcornSystem::new_shm(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let out = run(&mut sys, pid, Class::Tiny, true).unwrap();
        assert!(out.verified);
        assert!(sys.replicated_pages(pid) > 0, "Popcorn must have replicated grid pages");
    }

    #[test]
    fn idx_is_x_fastest() {
        assert_eq!(idx(8, 0, 0, 0), 0);
        assert_eq!(idx(8, 1, 0, 0), 1);
        assert_eq!(idx(8, 0, 1, 0), 8);
        assert_eq!(idx(8, 0, 0, 1), 64);
    }
}
