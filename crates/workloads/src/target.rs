//! A uniform handle over every OS design under test.
//!
//! The evaluation compares seven configurations (§9.2.1): Vanilla,
//! Popcorn-TCP, Popcorn-SHM on three hardware models, and Stramash on
//! three hardware models. [`TargetSystem`] wraps them behind one type so
//! the workloads and bench harnesses can iterate configurations.

use popcorn_os::PopcornSystem;
use std::fmt;
use stramash::StramashSystem;
use stramash_kernel::addr::VirtAddr;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{BaseSystem, OsError, OsSystem, VanillaSystem};
use stramash_sim::{
    shared_injector, Cycles, DomainId, FaultPlan, HardwareModel, SharedFaultInjector, SimConfig,
};

/// Which OS design to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Single-kernel baseline, no migration.
    Vanilla,
    /// Popcorn with TCP messaging (hardware-model independent, §8.2).
    PopcornTcp,
    /// Popcorn with shared-memory messaging.
    PopcornShm,
    /// The fused-kernel OS.
    Stramash,
}

impl SystemKind {
    /// All kinds, in the paper's figure order.
    pub const ALL: [SystemKind; 4] =
        [SystemKind::Vanilla, SystemKind::PopcornTcp, SystemKind::PopcornShm, SystemKind::Stramash];

    /// Whether this design migrates threads across ISAs.
    #[must_use]
    pub fn migrates(self) -> bool {
        self != SystemKind::Vanilla
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemKind::Vanilla => f.write_str("Vanilla"),
            SystemKind::PopcornTcp => f.write_str("Popcorn-TCP"),
            SystemKind::PopcornShm => f.write_str("Popcorn-SHM"),
            SystemKind::Stramash => f.write_str("Stramash"),
        }
    }
}

enum Inner {
    Vanilla(VanillaSystem),
    Popcorn(PopcornSystem),
    Stramash(StramashSystem),
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inner::Vanilla(_) => f.write_str("Vanilla"),
            Inner::Popcorn(_) => f.write_str("Popcorn"),
            Inner::Stramash(_) => f.write_str("Stramash"),
        }
    }
}

/// One booted system under test.
#[derive(Debug)]
pub struct TargetSystem {
    kind: SystemKind,
    model: HardwareModel,
    inner: Inner,
    /// The boot configuration, retained so a checkpoint can fingerprint
    /// the platform it was taken on and restore can reject mismatches.
    cfg: SimConfig,
}

/// Stable on-disk code for each [`SystemKind`] in checkpoint artifacts.
fn kind_code(kind: SystemKind) -> u8 {
    match kind {
        SystemKind::Vanilla => 0,
        SystemKind::PopcornTcp => 1,
        SystemKind::PopcornShm => 2,
        SystemKind::Stramash => 3,
    }
}

impl TargetSystem {
    /// Boots `kind` on `model` with the big machine pair.
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn build(kind: SystemKind, model: HardwareModel) -> Result<Self, OsError> {
        Self::build_with(kind, SimConfig::big_pair().with_hw_model(model))
    }

    /// Boots `kind` with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn build_with(kind: SystemKind, cfg: SimConfig) -> Result<Self, OsError> {
        let model = cfg.hw_model;
        let inner = match kind {
            SystemKind::Vanilla => Inner::Vanilla(VanillaSystem::new(cfg.clone())?),
            SystemKind::PopcornTcp => Inner::Popcorn(PopcornSystem::new_tcp(cfg.clone())?),
            SystemKind::PopcornShm => Inner::Popcorn(PopcornSystem::new_shm(cfg.clone())?),
            SystemKind::Stramash => Inner::Stramash(StramashSystem::new(cfg.clone())?),
        };
        Ok(TargetSystem { kind, model, inner, cfg })
    }

    /// The boot configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Serializes the complete mutable machine state into a versioned,
    /// CRC-protected checkpoint artifact. The header pins the magic,
    /// format version, system kind and a configuration fingerprint, so
    /// restore rejects artifacts from a different platform. Emits a
    /// [`stramash_sim::trace::TraceEvent::Checkpoint`] into the
    /// installed tracer (passive — no simulated cycles are charged).
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        use stramash_sim::checkpoint::{digest_str, Encoder, MAGIC, VERSION};
        let mut e = Encoder::new();
        e.u32(MAGIC);
        e.u32(VERSION);
        e.u8(kind_code(self.kind));
        e.u64(digest_str(&format!("{:?}", self.cfg)));
        match &self.inner {
            Inner::Vanilla(s) => s.base().save_state(&mut e),
            Inner::Popcorn(s) => s.save_state(&mut e),
            Inner::Stramash(s) => s.save_state(&mut e),
        }
        let bytes = e.finish();
        self.base().emit(stramash_sim::trace::TraceEvent::Checkpoint {
            domain: DomainId::X86,
            bytes: bytes.len() as u64,
        });
        if let Some(t) = self.base().tracer() {
            t.borrow_mut().metrics_mut().inc(stramash_sim::trace::CTR_CHECKPOINTS);
        }
        bytes
    }

    /// Restores a [`TargetSystem::checkpoint`] artifact into this
    /// freshly booted system. The system must have been built with the
    /// same kind and configuration; going forward the restored machine
    /// is bit-identical to the one the checkpoint was taken from.
    ///
    /// If a fault injector is installed, its serialized stream positions
    /// are restored too — including a `crash_fired` flag that rewinds
    /// with the checkpoint. A recovery harness replaying past a crash
    /// must call `disarm_crash()` on the injector after this returns.
    ///
    /// # Errors
    ///
    /// [`stramash_sim::checkpoint::CheckpointError`] on corrupt,
    /// truncated, or mismatched artifacts.
    pub fn restore(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::{digest_str, CheckpointError, Decoder, MAGIC, VERSION};
        let mut d = Decoder::new_verified(bytes)?;
        if d.u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        if d.u8()? != kind_code(self.kind) {
            return Err(CheckpointError::KindMismatch);
        }
        if d.u64()? != digest_str(&format!("{:?}", self.cfg)) {
            return Err(CheckpointError::ConfigMismatch);
        }
        match &mut self.inner {
            Inner::Vanilla(s) => s.base_mut().load_state(&mut d)?,
            Inner::Popcorn(s) => s.load_state(&mut d)?,
            Inner::Stramash(s) => s.load_state(&mut d)?,
        }
        Ok(())
    }

    /// Fails design-specific distributed state over after `dead`'s
    /// kernel died: Popcorn's DSM directories shed the dead domain's
    /// replicas (returning `(pages lost, replicas shed)`); the other
    /// designs keep all state in coherent shared memory and have
    /// nothing to fail over.
    pub fn fail_over(&mut self, dead: DomainId) -> (u64, u64) {
        match &mut self.inner {
            Inner::Popcorn(s) => s.fail_over(dead),
            Inner::Vanilla(_) | Inner::Stramash(_) => (0, 0),
        }
    }

    /// The design under test.
    #[must_use]
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// The hardware model in force.
    #[must_use]
    pub fn model(&self) -> HardwareModel {
        self.model
    }

    /// Spawns a process on `origin`.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn spawn(&mut self, origin: DomainId) -> Result<Pid, OsError> {
        match &mut self.inner {
            Inner::Vanilla(s) => s.spawn(origin),
            Inner::Popcorn(s) => s.spawn(origin),
            Inner::Stramash(s) => s.spawn(origin),
        }
    }

    /// DSM/origin-replicated page count (Table 3).
    #[must_use]
    pub fn replicated_pages(&self, pid: Pid) -> u64 {
        match &self.inner {
            Inner::Vanilla(_) => 0,
            Inner::Popcorn(s) => s.replicated_pages(pid),
            Inner::Stramash(s) => s.replicated_pages(),
        }
    }

    /// Total inter-kernel messages exchanged so far (Table 3).
    #[must_use]
    pub fn message_total(&self) -> u64 {
        self.base().msg.counters().total()
    }

    /// The Stramash-specific counters (None for other designs).
    #[must_use]
    pub fn stramash_counters(&self) -> Option<&stramash::StramashCounters> {
        match &self.inner {
            Inner::Stramash(s) => Some(s.counters()),
            _ => None,
        }
    }

    /// Direct access to the Stramash system (Table 4 benches).
    pub fn as_stramash_mut(&mut self) -> Option<&mut StramashSystem> {
        match &mut self.inner {
            Inner::Stramash(s) => Some(s),
            _ => None,
        }
    }

    /// Installs a deterministic fault-injection plan, seeded with
    /// `seed`, on whichever system is under test. Every workload run
    /// with the same plan and seed observes the identical fault
    /// sequence regardless of wall-clock timing.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.base_mut().install_fault_injector(shared_injector(plan, seed));
    }

    /// The installed fault injector, if any (for counters and the
    /// replayable fault log).
    #[must_use]
    pub fn fault_injector(&self) -> Option<&SharedFaultInjector> {
        self.base().fault_injector()
    }

    /// Installs a shared tracer on whichever system is under test: every
    /// layer (memory hierarchy, messaging, IPIs, OS protocols) records
    /// its events into the same deterministic stream.
    pub fn install_tracer(&mut self, tracer: stramash_sim::SharedTracer) {
        self.base_mut().install_tracer(tracer);
    }

    /// The installed tracer, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&stramash_sim::SharedTracer> {
        self.base().tracer()
    }

    /// Runs the design-specific invariant auditor and returns every
    /// violation found; empty means sound. Vanilla gets the base
    /// checks (ring cursors + cache coherence), Popcorn adds DSM
    /// directory ↔ page-table agreement, Stramash adds cross-ISA
    /// page-table ↔ VMA ↔ frame-ownership consistency.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        match &self.inner {
            Inner::Vanilla(s) => s.base().audit(),
            Inner::Popcorn(s) => s.audit(),
            Inner::Stramash(s) => s.audit(),
        }
    }

    /// Runs `f` with the process's executing domain temporarily forced
    /// to `domain` — modelling a second application thread pinned to the
    /// other kernel (used by the §9.2.4–§9.2.6 microbenchmarks).
    ///
    /// # Errors
    ///
    /// Propagates errors from `f` or the process lookup.
    pub fn as_thread_on<R>(
        &mut self,
        pid: Pid,
        domain: DomainId,
        f: impl FnOnce(&mut Self) -> Result<R, OsError>,
    ) -> Result<R, OsError> {
        let saved = self.base().process(pid)?.current;
        self.base_mut().process_mut(pid)?.current = domain;
        let result = f(self);
        self.base_mut().process_mut(pid)?.current = saved;
        result
    }
}

impl OsSystem for TargetSystem {
    fn base(&self) -> &BaseSystem {
        match &self.inner {
            Inner::Vanilla(s) => s.base(),
            Inner::Popcorn(s) => s.base(),
            Inner::Stramash(s) => s.base(),
        }
    }

    fn base_mut(&mut self) -> &mut BaseSystem {
        match &mut self.inner {
            Inner::Vanilla(s) => s.base_mut(),
            Inner::Popcorn(s) => s.base_mut(),
            Inner::Stramash(s) => s.base_mut(),
        }
    }

    fn name(&self) -> &'static str {
        match &self.inner {
            Inner::Vanilla(s) => s.name(),
            Inner::Popcorn(s) => s.name(),
            Inner::Stramash(s) => s.name(),
        }
    }

    fn epoch_horizon(&self) -> stramash_sim::EpochHorizon {
        // Must forward (not use the provided default) so Popcorn's
        // DSM-replica horizon override is honoured through the wrapper.
        match &self.inner {
            Inner::Vanilla(s) => s.epoch_horizon(),
            Inner::Popcorn(s) => s.epoch_horizon(),
            Inner::Stramash(s) => s.epoch_horizon(),
        }
    }

    fn handle_fault(&mut self, pid: Pid, va: VirtAddr, write: bool) -> Result<Cycles, OsError> {
        match &mut self.inner {
            Inner::Vanilla(s) => s.handle_fault(pid, va, write),
            Inner::Popcorn(s) => s.handle_fault(pid, va, write),
            Inner::Stramash(s) => s.handle_fault(pid, va, write),
        }
    }

    fn migrate(&mut self, pid: Pid, to: DomainId) -> Result<Cycles, OsError> {
        match &mut self.inner {
            Inner::Vanilla(s) => s.migrate(pid, to),
            Inner::Popcorn(s) => s.migrate(pid, to),
            Inner::Stramash(s) => s.migrate(pid, to),
        }
    }

    fn futex_lock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        match &mut self.inner {
            Inner::Vanilla(s) => s.futex_lock(pid, domain, uaddr),
            Inner::Popcorn(s) => s.futex_lock(pid, domain, uaddr),
            Inner::Stramash(s) => s.futex_lock(pid, domain, uaddr),
        }
    }

    fn futex_unlock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        match &mut self.inner {
            Inner::Vanilla(s) => s.futex_unlock(pid, domain, uaddr),
            Inner::Popcorn(s) => s.futex_unlock(pid, domain, uaddr),
            Inner::Stramash(s) => s.futex_unlock(pid, domain, uaddr),
        }
    }

    fn munmap(&mut self, pid: Pid, start: VirtAddr) -> Result<[u64; 2], OsError> {
        match &mut self.inner {
            Inner::Vanilla(s) => s.munmap(pid, start),
            Inner::Popcorn(s) => s.munmap(pid, start),
            Inner::Stramash(s) => s.munmap(pid, start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::vma::VmaProt;

    #[test]
    fn builds_every_kind() {
        for kind in SystemKind::ALL {
            let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
            let pid = sys.spawn(DomainId::X86).unwrap();
            let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
            sys.store_u64(pid, va, 9).unwrap();
            assert_eq!(sys.load_u64(pid, va).unwrap(), 9);
            assert_eq!(sys.kind(), kind);
            assert_eq!(sys.replicated_pages(pid), 0);
        }
    }

    #[test]
    fn vanilla_does_not_migrate() {
        assert!(!SystemKind::Vanilla.migrates());
        assert!(SystemKind::Stramash.migrates());
        let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        assert!(sys.migrate(pid, DomainId::ARM).is_err());
    }

    #[test]
    fn as_thread_on_restores_domain() {
        let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        sys.as_thread_on(pid, DomainId::ARM, |s| {
            assert_eq!(s.current_domain(pid)?, DomainId::ARM);
            s.load_u64(pid, va).map(|v| assert_eq!(v, 1))
        })
        .unwrap();
        assert_eq!(sys.current_domain(pid).unwrap(), DomainId::X86);
    }

    #[test]
    fn kind_display() {
        assert_eq!(SystemKind::PopcornShm.to_string(), "Popcorn-SHM");
        assert_eq!(SystemKind::ALL.len(), 4);
    }
}
