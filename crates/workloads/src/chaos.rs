//! The chaos harness: escalating seeded fault schedules against every
//! OS design, with shrinking reproducers.
//!
//! Each scenario runs the supervised KV workload (one request per
//! step, watchdog armed) under a [`ChaosSchedule`]-composed
//! [`FaultPlan`], then checks three oracles:
//!
//! 1. the run completes without an OS error,
//! 2. the design-specific invariant auditor reports no violations,
//! 3. the functional checksum matches the fault-free baseline
//!    (fingerprint drift = silent corruption).
//!
//! On a failure the harness ddmin-shrinks the schedule to a
//! 1-minimal reproducer that replays from `(seed, events)` alone.
//! `--inject-regression` seeds a deliberate recovery bug — it runs the
//! supervisor with [`RecoveryPolicy::Degrade`] where the byte-identical
//! contract requires [`RecoveryPolicy::RestartFromCheckpoint`] — so the
//! whole find→shrink→replay loop can be exercised end to end.
//!
//! [`FaultPlan`]: stramash_sim::FaultPlan

use crate::kvstore::KvOp;
use crate::recovery::{run_kv_recovered, RecoveryConfig, RecoveryPolicy};
use crate::target::{SystemKind, TargetSystem};
use stramash_kernel::system::OsError;
use stramash_sim::chaos::{shrink, ChaosEvent, ChaosSchedule};
use stramash_sim::HardwareModel;

/// Requests per chaos scenario — small enough that a full escalating
/// sweep across all four designs stays in CI budget, large enough to
/// cross several checkpoint intervals and the crash window.
const REQUESTS: u64 = 40;
/// Payload bytes per request.
const PAYLOAD: u32 = 64;

/// Supervisor knobs used by every scenario (checkpoint cadence chosen
/// so a stage-3 crash always lands a few steps past a checkpoint).
fn supervisor_config(policy: RecoveryPolicy) -> RecoveryConfig {
    RecoveryConfig { policy, checkpoint_every: 8, watchdog_threshold: 2 }
}

/// Outcome of one supervised scenario that ran to completion.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Functional checksum of the served responses + stored payloads.
    pub checksum: u64,
    /// Watchdog deaths observed.
    pub crashes: u32,
    /// Restart-from-checkpoint recoveries.
    pub restarts: u32,
    /// Invariant-auditor violations found after the run.
    pub violations: Vec<String>,
}

/// The fault-free baseline checksum for `kind` (same stepped workload,
/// watchdog armed, no injector).
///
/// # Errors
///
/// OS errors from the baseline run.
pub fn baseline_checksum(kind: SystemKind) -> Result<u64, OsError> {
    let sys = TargetSystem::build(kind, HardwareModel::Shared)?;
    let rc = supervisor_config(RecoveryPolicy::RestartFromCheckpoint);
    Ok(run_kv_recovered(sys, KvOp::Set, REQUESTS, PAYLOAD, &rc)?.result.checksum)
}

/// Runs one scenario: `events` composed into a seeded plan, supervised
/// KV run with `policy`, auditors afterwards.
///
/// # Errors
///
/// OS errors from the workload (an error *is* a chaos finding; the
/// caller folds it into the verdict).
pub fn run_scenario(
    kind: SystemKind,
    seed: u64,
    events: &[ChaosEvent],
    policy: RecoveryPolicy,
) -> Result<ScenarioOutcome, OsError> {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared)?;
    let plan = ChaosSchedule { seed, events: events.to_vec() }.plan();
    if !plan.is_noop() {
        sys.install_fault_plan(plan, seed);
    }
    let rc = supervisor_config(policy);
    let out = run_kv_recovered(sys, KvOp::Set, REQUESTS, PAYLOAD, &rc)?;
    Ok(ScenarioOutcome {
        checksum: out.result.checksum,
        crashes: out.crashes,
        restarts: out.restarts,
        violations: out.sys.audit(),
    })
}

/// The failure oracle: `Some(description)` when the scenario errors,
/// violates an invariant, or drifts from the baseline checksum.
#[must_use]
pub fn scenario_failure(
    kind: SystemKind,
    seed: u64,
    events: &[ChaosEvent],
    policy: RecoveryPolicy,
    baseline: u64,
) -> Option<String> {
    match run_scenario(kind, seed, events, policy) {
        Err(e) => Some(format!("workload error: {e}")),
        Ok(out) => verdict(&out, baseline),
    }
}

/// Folds a completed scenario into a failure description, if any.
fn verdict(out: &ScenarioOutcome, baseline: u64) -> Option<String> {
    if !out.violations.is_empty() {
        return Some(format!("auditor violations: {}", out.violations.join("; ")));
    }
    if out.checksum != baseline {
        return Some(format!(
            "fingerprint drift: got {:#x}, baseline {:#x}",
            out.checksum, baseline
        ));
    }
    None
}

/// One (stage, kind) cell of the escalating sweep.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Escalation stage (0-based).
    pub stage: u32,
    /// Design under test.
    pub kind: SystemKind,
    /// The schedule that ran.
    pub schedule: ChaosSchedule,
    /// Watchdog deaths / restarts observed (0/0 when the stage carries
    /// no crash).
    pub crashes: u32,
    /// Restart recoveries.
    pub restarts: u32,
    /// `Some` when an oracle tripped.
    pub failure: Option<String>,
}

/// A finished sweep: every cell, plus the shrunk reproducer when a
/// failure was found.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every (stage, kind) cell run, in order.
    pub cells: Vec<StageReport>,
    /// The first failure, shrunk to a 1-minimal schedule.
    pub reproducer: Option<Reproducer>,
}

/// A minimal, replayable failure.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Design the failure reproduces on.
    pub kind: SystemKind,
    /// The original failure description.
    pub failure: String,
    /// The 1-minimal schedule (replay with the same seed).
    pub schedule: ChaosSchedule,
}

/// Runs the escalating sweep: stages `0..stages`, each against all
/// four designs. Stops at the first failing cell, shrinks it, and
/// returns the reproducer; a fully-green sweep returns
/// `reproducer: None`.
///
/// # Errors
///
/// Only baseline (fault-free) runs can error out of the sweep —
/// scenario errors are findings, not sweep errors.
pub fn chaos_sweep(
    seed: u64,
    stages: u32,
    inject_regression: bool,
) -> Result<ChaosReport, OsError> {
    let policy = if inject_regression {
        RecoveryPolicy::Degrade
    } else {
        RecoveryPolicy::RestartFromCheckpoint
    };
    let mut baselines: [Option<u64>; 4] = [None; 4];
    let mut cells = Vec::new();
    for stage in 0..stages {
        for kind in SystemKind::ALL {
            let idx = SystemKind::ALL.iter().position(|&k| k == kind).unwrap_or(0);
            let baseline = match baselines[idx] {
                Some(b) => b,
                None => {
                    let b = baseline_checksum(kind)?;
                    baselines[idx] = Some(b);
                    b
                }
            };
            let schedule = ChaosSchedule::generate(seed, stage);
            let (crashes, restarts, failure) =
                match run_scenario(kind, seed, &schedule.events, policy) {
                    Ok(out) => (out.crashes, out.restarts, verdict(&out, baseline)),
                    Err(e) => (0, 0, Some(format!("workload error: {e}"))),
                };
            cells.push(StageReport {
                stage,
                kind,
                schedule: schedule.clone(),
                crashes,
                restarts,
                failure: failure.clone(),
            });
            if let Some(desc) = failure {
                let minimal = shrink(&schedule.events, |evs| {
                    scenario_failure(kind, seed, evs, policy, baseline).is_some()
                });
                return Ok(ChaosReport {
                    cells,
                    reproducer: Some(Reproducer {
                        kind,
                        failure: desc,
                        schedule: ChaosSchedule { seed, events: minimal },
                    }),
                });
            }
        }
    }
    Ok(ChaosReport { cells, reproducer: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_stage_survives_every_design() {
        let report = chaos_sweep(0x5eed, 1, false).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert!(report.reproducer.is_none(), "{:?}", report.reproducer);
    }

    #[test]
    fn crash_stage_recovers_byte_identically() {
        // Stage 3 carries a domain crash; restart-from-checkpoint must
        // keep every design on the baseline fingerprint.
        let sched = ChaosSchedule::generate(0x5eed, 3);
        assert!(sched.crash().is_some());
        let baseline = baseline_checksum(SystemKind::Stramash).unwrap();
        let failure = scenario_failure(
            SystemKind::Stramash,
            0x5eed,
            &sched.events,
            RecoveryPolicy::RestartFromCheckpoint,
            baseline,
        );
        assert!(failure.is_none(), "{failure:?}");
    }

    #[test]
    fn injected_regression_shrinks_to_minimal_reproducer() {
        // The seeded recovery bug (degrade where restart is required)
        // must be found, shrunk to <= 3 events, and replay.
        let report = chaos_sweep(0x5eed, 4, true).unwrap();
        let rep = report.reproducer.expect("the injected regression must be found");
        assert!(
            rep.schedule.events.len() <= 3,
            "reproducer not minimal: {}",
            rep.schedule.describe()
        );
        assert!(
            rep.schedule.events.iter().any(|e| matches!(e, ChaosEvent::Crash { .. })),
            "the culprit must include the domain crash"
        );
        // Deterministic replay: the minimal schedule still fails.
        let baseline = baseline_checksum(rep.kind).unwrap();
        assert!(scenario_failure(
            rep.kind,
            rep.schedule.seed,
            &rep.schedule.events,
            RecoveryPolicy::Degrade,
            baseline,
        )
        .is_some());
    }
}
