//! Workloads for the Stramash reproduction.
//!
//! Everything the paper's evaluation (§8–§9) runs on top of the OS
//! designs, rebuilt as *functional* programs whose every memory access
//! travels through the simulated system:
//!
//! * [`npb`] — the NAS Parallel Benchmark kernels IS, CG, MG and FT
//!   (§8.3), with per-procedure cross-ISA migration,
//! * [`micro`] — the §9.2.4–§9.2.6 microbenchmarks (memory-access
//!   analysis, consistency granularity, futex ping-pong),
//! * [`kvstore`] — the §9.2.8 network-serving KV store (Figure 14),
//! * [`serve`] — the production-scale serving scenario: sharded store,
//!   workers on both ISA domains, open-loop Poisson/Zipfian load,
//!   p50/p99-vs-load curves,
//! * [`target`] — [`TargetSystem`], one handle over Vanilla /
//!   Popcorn-TCP / Popcorn-SHM / Stramash,
//! * [`driver`] — configuration sweeps and metric collection,
//! * [`client`] — the typed application-side memory interface.
//!
//! # Example
//!
//! ```
//! use stramash_workloads::driver::{run_benchmark, Configuration};
//! use stramash_workloads::npb::{Class, NpbKind};
//! use stramash_workloads::target::SystemKind;
//! use stramash_sim::HardwareModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = Configuration { kind: SystemKind::Stramash, model: HardwareModel::Shared };
//! let report = run_benchmark(cfg, NpbKind::Is, Class::Tiny)?;
//! assert!(report.outcome.verified); // IS really sorted its keys
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod driver;
pub mod kvstore;
pub mod micro;
pub mod npb;
pub mod pair;
pub mod recovery;
pub mod serve;
pub mod target;

pub use chaos::{chaos_sweep, ChaosReport, Reproducer, StageReport};
pub use client::{ArrayF64, ArrayU64, ColSpec, IndexedPlan, MemoryClient, PlanCol, ScopePlan};
pub use driver::{run_benchmark, run_benchmark_with, Configuration, RunReport};
pub use kvstore::{run_kv, KvOp, KvRunResult, KvServer, ShardedKv};
pub use serve::{
    generate_schedule, run_serve, run_serve_curve, schedule_fingerprint, Request, ServeConfig,
    ServeResult,
};
pub use micro::{
    futex_pingpong, granularity, memory_access, AccessResult, AccessScenario, FutexResult,
    GranularityResult,
};
pub use npb::{run_npb, Class, NpbKind, NpbOutcome};
pub use pair::{run_pair, PairConfig, PairOutcome, PairRun};
pub use recovery::{
    run_is_recovered, run_kv_recovered, Recovered, RecoveryConfig, RecoveryPolicy,
};
pub use target::{SystemKind, TargetSystem};
