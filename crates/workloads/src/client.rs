//! Typed application-side memory access.
//!
//! Workloads are real algorithms whose every load and store travels
//! through the simulated OS and memory system. [`MemoryClient`] wraps an
//! [`OsSystem`] + [`Pid`] with typed array helpers and instruction
//! accounting, playing the role of the compiled NPB binary running on
//! the machine.

use stramash_kernel::addr::VirtAddr;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};
use stramash_kernel::vma::VmaProt;
use stramash_sim::DomainId;

/// A virtually-addressed `f64` array owned by the process.
#[derive(Debug, Clone, Copy)]
pub struct ArrayF64 {
    base: VirtAddr,
    len: u64,
}

impl ArrayF64 {
    /// Element count.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn at(&self, i: u64) -> VirtAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base.offset(i * 8)
    }
}

/// A virtually-addressed `u64` array owned by the process.
#[derive(Debug, Clone, Copy)]
pub struct ArrayU64 {
    base: VirtAddr,
    len: u64,
}

impl ArrayU64 {
    /// Element count.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn at(&self, i: u64) -> VirtAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base.offset(i * 8)
    }
}

/// Batched instruction accounting: retiring per-op would call into the
/// timebase constantly, so the client accumulates and flushes.
const EXEC_FLUSH: u64 = 4096;

/// The application's view of the machine.
///
/// # Examples
///
/// ```
/// use stramash_kernel::system::VanillaSystem;
/// use stramash_sim::{DomainId, SimConfig};
/// use stramash_workloads::MemoryClient;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = VanillaSystem::new(SimConfig::big_pair())?;
/// let pid = sys.spawn(DomainId::X86)?;
/// let mut app = MemoryClient::new(&mut sys, pid);
/// let xs = app.alloc_f64(128)?;
/// app.st_f64(xs, 0, 3.5)?;
/// app.work(12)?; // twelve compute instructions
/// assert_eq!(app.ld_f64(xs, 0)?, 3.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryClient<'a, S: OsSystem> {
    sys: &'a mut S,
    pid: Pid,
    pending_insns: u64,
}

impl<'a, S: OsSystem> MemoryClient<'a, S> {
    /// Wraps a system and process.
    pub fn new(sys: &'a mut S, pid: Pid) -> Self {
        MemoryClient { sys, pid, pending_insns: 0 }
    }

    /// The wrapped process id.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The underlying system.
    pub fn system(&mut self) -> &mut S {
        self.sys
    }

    /// Allocates an `f64` array (lazily populated on fault).
    ///
    /// # Errors
    ///
    /// VMA errors.
    pub fn alloc_f64(&mut self, len: u64) -> Result<ArrayF64, OsError> {
        let base = self.sys.mmap(self.pid, len * 8, VmaProt::rw())?;
        Ok(ArrayF64 { base, len })
    }

    /// Allocates a `u64` array.
    ///
    /// # Errors
    ///
    /// VMA errors.
    pub fn alloc_u64(&mut self, len: u64) -> Result<ArrayU64, OsError> {
        let base = self.sys.mmap(self.pid, len * 8, VmaProt::rw())?;
        Ok(ArrayU64 { base, len })
    }

    /// Allocates raw bytes.
    ///
    /// # Errors
    ///
    /// VMA errors.
    pub fn alloc_bytes(&mut self, len: u64) -> Result<VirtAddr, OsError> {
        self.sys.mmap(self.pid, len, VmaProt::rw())
    }

    /// Loads `a[i]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_f64(&mut self, a: ArrayF64, i: u64) -> Result<f64, OsError> {
        self.sys.load_f64(self.pid, a.at(i))
    }

    /// Stores `a[i] = v`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_f64(&mut self, a: ArrayF64, i: u64, v: f64) -> Result<(), OsError> {
        self.sys.store_f64(self.pid, a.at(i), v)
    }

    /// Loads `a[i]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_u64(&mut self, a: ArrayU64, i: u64) -> Result<u64, OsError> {
        self.sys.load_u64(self.pid, a.at(i))
    }

    /// Stores `a[i] = v`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_u64(&mut self, a: ArrayU64, i: u64, v: u64) -> Result<(), OsError> {
        self.sys.store_u64(self.pid, a.at(i), v)
    }

    /// Accounts `n` compute instructions (flushed in batches).
    ///
    /// # Errors
    ///
    /// Process-lookup errors on flush.
    pub fn work(&mut self, n: u64) -> Result<(), OsError> {
        self.pending_insns += n;
        if self.pending_insns >= EXEC_FLUSH {
            let pending = self.pending_insns;
            self.pending_insns = 0;
            self.sys.exec(self.pid, pending)?;
        }
        Ok(())
    }

    /// Flushes any pending instruction count.
    ///
    /// # Errors
    ///
    /// Process-lookup errors.
    pub fn flush_work(&mut self) -> Result<(), OsError> {
        if self.pending_insns > 0 {
            let pending = self.pending_insns;
            self.pending_insns = 0;
            self.sys.exec(self.pid, pending)?;
        }
        Ok(())
    }

    /// Migrates the thread (flushing pending work first so instructions
    /// are charged to the domain that executed them).
    ///
    /// # Errors
    ///
    /// Migration errors.
    pub fn migrate(&mut self, to: DomainId) -> Result<(), OsError> {
        self.flush_work()?;
        self.sys.migrate(self.pid, to)?;
        Ok(())
    }

    /// The executing domain.
    ///
    /// # Errors
    ///
    /// Process-lookup errors.
    pub fn domain(&self) -> Result<DomainId, OsError> {
        self.sys.current_domain(self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::SimConfig;

    fn client_env() -> (VanillaSystem, Pid) {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        (sys, pid)
    }

    #[test]
    fn typed_array_roundtrip() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        let a = c.alloc_f64(100).unwrap();
        let b = c.alloc_u64(100).unwrap();
        for i in 0..100 {
            c.st_f64(a, i, i as f64 * 0.5).unwrap();
            c.st_u64(b, i, i * 3).unwrap();
        }
        for i in 0..100 {
            assert_eq!(c.ld_f64(a, i).unwrap(), i as f64 * 0.5);
            assert_eq!(c.ld_u64(b, i).unwrap(), i * 3);
        }
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let a = ArrayF64 { base: VirtAddr::new(0x4000_0000), len: 4 };
        let _ = a.at(4);
    }

    #[test]
    fn work_batches_and_flushes() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        for _ in 0..100 {
            c.work(10).unwrap();
        }
        c.flush_work().unwrap();
        assert_eq!(sys.base().timebase.clock(DomainId::X86).icount(), 1000);
    }

    #[test]
    fn arrays_do_not_alias() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        let a = c.alloc_u64(16).unwrap();
        let b = c.alloc_u64(16).unwrap();
        c.st_u64(a, 0, 111).unwrap();
        c.st_u64(b, 0, 222).unwrap();
        assert_eq!(c.ld_u64(a, 0).unwrap(), 111);
    }
}
