//! Typed application-side memory access.
//!
//! Workloads are real algorithms whose every load and store travels
//! through the simulated OS and memory system. [`MemoryClient`] wraps an
//! [`OsSystem`] + [`Pid`] with typed array helpers and instruction
//! accounting, playing the role of the compiled NPB binary running on
//! the machine.

use stramash_kernel::addr::{VirtAddr, PAGE_SIZE};
use stramash_kernel::process::Pid;
use stramash_kernel::session::AccessSession;
use stramash_kernel::system::{OsError, OsSystem};
use stramash_kernel::vma::VmaProt;
use stramash_mem::AccessPlan;
use stramash_sim::DomainId;

/// A virtually-addressed `f64` array owned by the process.
#[derive(Debug, Clone, Copy)]
pub struct ArrayF64 {
    base: VirtAddr,
    len: u64,
}

impl ArrayF64 {
    /// Rebuilds a handle from its raw parts (checkpoint restore).
    #[must_use]
    pub fn from_raw(base: VirtAddr, len: u64) -> Self {
        ArrayF64 { base, len }
    }

    /// Base address of element 0.
    #[must_use]
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn at(&self, i: u64) -> VirtAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base.offset(i * 8)
    }
}

/// A virtually-addressed `u64` array owned by the process.
#[derive(Debug, Clone, Copy)]
pub struct ArrayU64 {
    base: VirtAddr,
    len: u64,
}

impl ArrayU64 {
    /// Rebuilds a handle from its raw parts (checkpoint restore).
    #[must_use]
    pub fn from_raw(base: VirtAddr, len: u64) -> Self {
        ArrayU64 { base, len }
    }

    /// Base address of element 0.
    #[must_use]
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn at(&self, i: u64) -> VirtAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base.offset(i * 8)
    }
}

/// Batched instruction accounting: retiring per-op would call into the
/// timebase constantly, so the client accumulates and flushes.
const EXEC_FLUSH: u64 = 4096;

/// The application's view of the machine.
///
/// # Examples
///
/// ```
/// use stramash_kernel::system::VanillaSystem;
/// use stramash_sim::{DomainId, SimConfig};
/// use stramash_workloads::MemoryClient;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = VanillaSystem::new(SimConfig::big_pair())?;
/// let pid = sys.spawn(DomainId::X86)?;
/// let mut app = MemoryClient::new(&mut sys, pid);
/// let xs = app.alloc_f64(128)?;
/// app.st_f64(xs, 0, 3.5)?;
/// app.work(12)?; // twelve compute instructions
/// assert_eq!(app.ld_f64(xs, 0)?, 3.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryClient<'a, S: OsSystem> {
    sys: &'a mut S,
    pid: Pid,
    pending_insns: u64,
    /// Translation session backing [`MemoryClient::batch`] scopes.
    session: AccessSession,
}

impl<'a, S: OsSystem> MemoryClient<'a, S> {
    /// Wraps a system and process.
    pub fn new(sys: &'a mut S, pid: Pid) -> Self {
        let session = AccessSession::new(pid);
        MemoryClient { sys, pid, pending_insns: 0, session }
    }

    /// The wrapped process id.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The underlying system.
    pub fn system(&mut self) -> &mut S {
        self.sys
    }

    /// Allocates an `f64` array (lazily populated on fault).
    ///
    /// # Errors
    ///
    /// VMA errors.
    pub fn alloc_f64(&mut self, len: u64) -> Result<ArrayF64, OsError> {
        let base = self.sys.mmap(self.pid, len * 8, VmaProt::rw())?;
        Ok(ArrayF64 { base, len })
    }

    /// Allocates a `u64` array.
    ///
    /// # Errors
    ///
    /// VMA errors.
    pub fn alloc_u64(&mut self, len: u64) -> Result<ArrayU64, OsError> {
        let base = self.sys.mmap(self.pid, len * 8, VmaProt::rw())?;
        Ok(ArrayU64 { base, len })
    }

    /// Allocates raw bytes.
    ///
    /// # Errors
    ///
    /// VMA errors.
    pub fn alloc_bytes(&mut self, len: u64) -> Result<VirtAddr, OsError> {
        self.sys.mmap(self.pid, len, VmaProt::rw())
    }

    /// Loads `a[i]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_f64(&mut self, a: ArrayF64, i: u64) -> Result<f64, OsError> {
        self.sys.load_f64(self.pid, a.at(i))
    }

    /// Stores `a[i] = v`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_f64(&mut self, a: ArrayF64, i: u64, v: f64) -> Result<(), OsError> {
        self.sys.store_f64(self.pid, a.at(i), v)
    }

    /// Loads `a[i]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_u64(&mut self, a: ArrayU64, i: u64) -> Result<u64, OsError> {
        self.sys.load_u64(self.pid, a.at(i))
    }

    /// Stores `a[i] = v`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_u64(&mut self, a: ArrayU64, i: u64, v: u64) -> Result<(), OsError> {
        self.sys.store_u64(self.pid, a.at(i), v)
    }

    /// Accounts `n` compute instructions (flushed in batches).
    ///
    /// # Errors
    ///
    /// Process-lookup errors on flush.
    pub fn work(&mut self, n: u64) -> Result<(), OsError> {
        self.pending_insns += n;
        if self.pending_insns >= EXEC_FLUSH {
            let pending = self.pending_insns;
            self.pending_insns = 0;
            self.sys.exec(self.pid, pending)?;
        }
        Ok(())
    }

    /// Flushes any pending instruction count.
    ///
    /// # Errors
    ///
    /// Process-lookup errors.
    pub fn flush_work(&mut self) -> Result<(), OsError> {
        if self.pending_insns > 0 {
            let pending = self.pending_insns;
            self.pending_insns = 0;
            self.sys.exec(self.pid, pending)?;
        }
        Ok(())
    }

    /// Migrates the thread (flushing pending work first so instructions
    /// are charged to the domain that executed them).
    ///
    /// # Errors
    ///
    /// Migration errors.
    pub fn migrate(&mut self, to: DomainId) -> Result<(), OsError> {
        self.flush_work()?;
        self.sys.migrate(self.pid, to)?;
        Ok(())
    }

    /// The executing domain.
    ///
    /// # Errors
    ///
    /// Process-lookup errors.
    pub fn domain(&self) -> Result<DomainId, OsError> {
        self.sys.current_domain(self.pid)
    }

    /// Opens a batched-access scope over the client's translation
    /// session: the `(pid, domain)` resolution and session revalidation
    /// happen here, once, and every op on the returned scope reuses
    /// them. Cycle-identical to issuing the equivalent scalar ops —
    /// the golden tests pin that — but much faster on the host.
    ///
    /// When batching is disabled on the [`BaseSystem`], every scope op
    /// transparently delegates to its scalar counterpart (the reference
    /// execution).
    ///
    /// Nothing inside a scope may migrate or unmap: those go through
    /// [`MemoryClient::migrate`] / the system directly, after the scope
    /// is dropped. Page faults *inside* a scope are fine — the session
    /// resynchronises with the TLB after every fallback translation.
    ///
    /// [`BaseSystem`]: stramash_kernel::system::BaseSystem
    ///
    /// # Errors
    ///
    /// Process-lookup errors.
    pub fn batch(&mut self) -> Result<BatchScope<'_, 'a, S>, OsError> {
        let fast = self.sys.base().batching_enabled();
        if fast {
            self.sys.session_begin(&mut self.session)?;
        }
        // A batch phase is private by construction (no migrate, no
        // unmap, faults suspend) — the natural deferred-epoch bracket.
        // `epoch_open` checks the policy and the cross-domain horizon;
        // nesting inside a wider epoch (e.g. the pair runner's) is
        // fine, the outermost close replays.
        let epoch = fast && self.sys.epoch_open();
        Ok(BatchScope { c: self, fast, epoch })
    }
}

/// A batched-access scope; see [`MemoryClient::batch`].
///
/// Element ops (`ld_f64`, `st_u64`, …) mirror the scalar client ops
/// one-for-one; slice ops issue page/flush-bounded runs whose
/// per-element access order is exactly the scalar loop's.
#[derive(Debug)]
pub struct BatchScope<'c, 'a, S: OsSystem> {
    c: &'c mut MemoryClient<'a, S>,
    /// Whether the batched fast path is active (false = delegate to the
    /// scalar reference ops).
    fast: bool,
    /// Whether this scope opened a deferred-epoch level (closed on
    /// drop).
    epoch: bool,
}

impl<S: OsSystem> Drop for BatchScope<'_, '_, S> {
    fn drop(&mut self) {
        if self.epoch {
            self.c.sys.epoch_close();
        }
    }
}

impl<S: OsSystem> BatchScope<'_, '_, S> {
    /// Translates through the session and performs one fused aligned
    /// element read.
    fn ld_word(&mut self, va: VirtAddr) -> Result<u64, OsError> {
        let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, false)?;
        let domain = self.c.session.domain();
        let base = self.c.sys.base_mut();
        let (v, cyc) = base.mem.read_u64_aligned(domain, pa);
        base.charge(domain, cyc);
        Ok(v)
    }

    /// Translates through the session and performs one fused aligned
    /// element write.
    fn st_word(&mut self, va: VirtAddr, v: u64) -> Result<(), OsError> {
        let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, true)?;
        let domain = self.c.session.domain();
        let base = self.c.sys.base_mut();
        let cyc = base.mem.write_u64_aligned(domain, pa, v);
        base.charge(domain, cyc);
        Ok(())
    }

    /// Loads `a[i]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_f64(&mut self, a: ArrayF64, i: u64) -> Result<f64, OsError> {
        if !self.fast {
            return self.c.ld_f64(a, i);
        }
        Ok(f64::from_bits(self.ld_word(a.at(i))?))
    }

    /// Stores `a[i] = v`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_f64(&mut self, a: ArrayF64, i: u64, v: f64) -> Result<(), OsError> {
        if !self.fast {
            return self.c.st_f64(a, i, v);
        }
        self.st_word(a.at(i), v.to_bits())
    }

    /// Loads `a[i]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_u64(&mut self, a: ArrayU64, i: u64) -> Result<u64, OsError> {
        if !self.fast {
            return self.c.ld_u64(a, i);
        }
        self.ld_word(a.at(i))
    }

    /// Stores `a[i] = v`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_u64(&mut self, a: ArrayU64, i: u64, v: u64) -> Result<(), OsError> {
        if !self.fast {
            return self.c.st_u64(a, i, v);
        }
        self.st_word(a.at(i), v)
    }

    /// Accounts compute instructions, exactly like
    /// [`MemoryClient::work`].
    ///
    /// # Errors
    ///
    /// Process-lookup errors on flush.
    pub fn work(&mut self, n: u64) -> Result<(), OsError> {
        self.c.work(n)
    }

    /// Loads the adjacent pair `a[i], a[i+1]` (`i` even — a 16-byte
    /// aligned pair always shares one cache line and one page, so the
    /// second element is translated and charged as the L1/TLB hit it
    /// would be on the scalar path).
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_f64_pair(&mut self, a: ArrayF64, i: u64) -> Result<(f64, f64), OsError> {
        if !self.fast {
            return Ok((self.c.ld_f64(a, i)?, self.c.ld_f64(a, i + 1)?));
        }
        debug_assert!(i.is_multiple_of(2), "pair base must be even");
        let va = a.at(i);
        let _ = a.at(i + 1); // bounds check
        let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, false)?;
        let domain = self.c.session.domain();
        let base = self.c.sys.base_mut();
        let mut out = [0u64; 2];
        let cyc = base.mem.read_u64_run(domain, pa, &mut out);
        base.charge(domain, cyc);
        base.mem.note_tlb_hit(domain);
        Ok((f64::from_bits(out[0]), f64::from_bits(out[1])))
    }

    /// Stores the adjacent pair `a[i] = v0, a[i+1] = v1` (`i` even).
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_f64_pair(&mut self, a: ArrayF64, i: u64, v0: f64, v1: f64) -> Result<(), OsError> {
        if !self.fast {
            self.c.st_f64(a, i, v0)?;
            return self.c.st_f64(a, i + 1, v1);
        }
        debug_assert!(i.is_multiple_of(2), "pair base must be even");
        let va = a.at(i);
        let _ = a.at(i + 1); // bounds check
        let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, true)?;
        let domain = self.c.session.domain();
        let base = self.c.sys.base_mut();
        let cyc = base.mem.write_u64_run(domain, pa, &[v0.to_bits(), v1.to_bits()]);
        base.charge(domain, cyc);
        base.mem.note_tlb_hit(domain);
        Ok(())
    }

    /// Largest run length whose trailing `work(work_per)` calls cannot
    /// flush before the last element — so batching the accesses ahead
    /// of the works reorders nothing (the modelled I-fetch stream stays
    /// put). The final element's work may flush, exactly where the
    /// scalar loop would.
    fn flush_cap(&self, work_per: u64) -> usize {
        match (EXEC_FLUSH - 1 - self.c.pending_insns).checked_div(work_per) {
            Some(runs) => (runs + 1) as usize,
            None => usize::MAX,
        }
    }

    /// One batched store run: at most one page, at most the flush cap.
    /// Returns how many elements were stored.
    fn st_run(
        &mut self,
        va: VirtAddr,
        words: &[u64],
        work_per: u64,
    ) -> Result<usize, OsError> {
        let in_page = ((PAGE_SIZE - va.page_offset()) / 8) as usize;
        let n = words.len().min(in_page).min(self.flush_cap(work_per));
        let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, true)?;
        let domain = self.c.session.domain();
        let base = self.c.sys.base_mut();
        let cyc = base.mem.write_u64_run(domain, pa, &words[..n]);
        base.charge(domain, cyc);
        // Elements 2..n sit on the freshly-translated page: each would
        // be a zero-cycle TLB hit on the scalar path.
        base.mem.note_tlb_hits(domain, (n - 1) as u64);
        for _ in 0..n {
            self.c.work(work_per)?;
        }
        Ok(n)
    }

    /// One batched load run; see [`BatchScope::st_run`].
    fn ld_run(
        &mut self,
        va: VirtAddr,
        out: &mut [u64],
        work_per: u64,
    ) -> Result<usize, OsError> {
        let in_page = ((PAGE_SIZE - va.page_offset()) / 8) as usize;
        let n = out.len().min(in_page).min(self.flush_cap(work_per));
        let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, false)?;
        let domain = self.c.session.domain();
        let base = self.c.sys.base_mut();
        let cyc = base.mem.read_u64_run(domain, pa, &mut out[..n]);
        base.charge(domain, cyc);
        base.mem.note_tlb_hits(domain, (n - 1) as u64);
        for _ in 0..n {
            self.c.work(work_per)?;
        }
        Ok(n)
    }

    /// Stores `vals` into `a[start..]`, accounting `work_per`
    /// instructions per element — order-identical to the scalar loop
    /// `for k { st_u64(a, start+k, vals[k]); work(work_per) }`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_u64_slice(
        &mut self,
        a: ArrayU64,
        start: u64,
        vals: &[u64],
        work_per: u64,
    ) -> Result<(), OsError> {
        if !self.fast {
            for (k, &v) in vals.iter().enumerate() {
                self.c.st_u64(a, start + k as u64, v)?;
                self.c.work(work_per)?;
            }
            return Ok(());
        }
        if !vals.is_empty() {
            let _ = a.at(start + vals.len() as u64 - 1); // bounds check
        }
        let mut k = 0usize;
        while k < vals.len() {
            k += self.st_run(a.at(start + k as u64), &vals[k..], work_per)?;
        }
        Ok(())
    }

    /// Loads `out.len()` elements from `a[start..]` with `work_per`
    /// instructions per element; the scalar-loop equivalent of
    /// [`BatchScope::st_u64_slice`].
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_u64_slice(
        &mut self,
        a: ArrayU64,
        start: u64,
        out: &mut [u64],
        work_per: u64,
    ) -> Result<(), OsError> {
        if !self.fast {
            for (k, o) in out.iter_mut().enumerate() {
                *o = self.c.ld_u64(a, start + k as u64)?;
                self.c.work(work_per)?;
            }
            return Ok(());
        }
        if !out.is_empty() {
            let _ = a.at(start + out.len() as u64 - 1); // bounds check
        }
        let mut k = 0usize;
        while k < out.len() {
            let va = a.at(start + k as u64);
            let n = {
                let rest = &mut out[k..];
                self.ld_run(va, rest, work_per)?
            };
            k += n;
        }
        Ok(())
    }

    /// Stores `vals` into `a[start..]` (bit-for-bit `f64`s).
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn st_f64_slice(
        &mut self,
        a: ArrayF64,
        start: u64,
        vals: &[f64],
        work_per: u64,
    ) -> Result<(), OsError> {
        if !self.fast {
            for (k, &v) in vals.iter().enumerate() {
                self.c.st_f64(a, start + k as u64, v)?;
                self.c.work(work_per)?;
            }
            return Ok(());
        }
        if !vals.is_empty() {
            let _ = a.at(start + vals.len() as u64 - 1); // bounds check
        }
        let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        let mut k = 0usize;
        while k < bits.len() {
            k += self.st_run(a.at(start + k as u64), &bits[k..], work_per)?;
        }
        Ok(())
    }

    /// Loads `out.len()` elements from `a[start..]`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn ld_f64_slice(
        &mut self,
        a: ArrayF64,
        start: u64,
        out: &mut [f64],
        work_per: u64,
    ) -> Result<(), OsError> {
        if !self.fast {
            for (k, o) in out.iter_mut().enumerate() {
                *o = self.c.ld_f64(a, start + k as u64)?;
                self.c.work(work_per)?;
            }
            return Ok(());
        }
        if !out.is_empty() {
            let _ = a.at(start + out.len() as u64 - 1); // bounds check
        }
        let mut bits = vec![0u64; out.len()];
        let mut k = 0usize;
        while k < bits.len() {
            let va = a.at(start + k as u64);
            let n = {
                let rest = &mut bits[k..];
                self.ld_run(va, rest, work_per)?
            };
            k += n;
        }
        for (o, b) in out.iter_mut().zip(&bits) {
            *o = f64::from_bits(*b);
        }
        Ok(())
    }

    /// Fills `a[start..start+len]` with `value`, `work_per` instructions
    /// per element — the batched form of a scalar clear loop.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn fill_u64(
        &mut self,
        a: ArrayU64,
        start: u64,
        len: u64,
        value: u64,
        work_per: u64,
    ) -> Result<(), OsError> {
        if !self.fast {
            for k in 0..len {
                self.c.st_u64(a, start + k, value)?;
                self.c.work(work_per)?;
            }
            return Ok(());
        }
        if len > 0 {
            let _ = a.at(start + len - 1); // bounds check
        }
        let buf = vec![value; (len.min(PAGE_SIZE / 8)) as usize];
        let mut k = 0u64;
        while k < len {
            let n = buf.len().min((len - k) as usize);
            let done = self.st_run(a.at(start + k), &buf[..n], work_per)?;
            k += done as u64;
        }
        Ok(())
    }

    /// Gathers `a[idx[k]]` for every index, `work_per` instructions per
    /// element. Indices are arbitrary, so each element translates
    /// through the session individually (order-identical to the scalar
    /// gather loop).
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn gather_f64(
        &mut self,
        a: ArrayF64,
        idx: &[u64],
        out: &mut Vec<f64>,
        work_per: u64,
    ) -> Result<(), OsError> {
        out.clear();
        for &i in idx {
            let v = self.ld_f64(a, i)?;
            out.push(v);
            self.work(work_per)?;
        }
        Ok(())
    }

    /// Fused dot product `Σ x[i]·y[i]`, `work_per` instructions per
    /// element — access order `ld x[i]; ld y[i]; work` exactly like the
    /// CG scalar loop.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn dot_f64(
        &mut self,
        x: ArrayF64,
        y: ArrayF64,
        n: u64,
        work_per: u64,
    ) -> Result<f64, OsError> {
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.ld_f64(x, i)?;
            let b = self.ld_f64(y, i)?;
            acc += a * b;
            self.work(work_per)?;
        }
        Ok(acc)
    }

    /// Fused axpy `y[i] += alpha·x[i]`, access order
    /// `ld y[i]; ld x[i]; st y[i]; work` per element.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn axpy_f64(
        &mut self,
        alpha: f64,
        x: ArrayF64,
        y: ArrayF64,
        n: u64,
        work_per: u64,
    ) -> Result<(), OsError> {
        for i in 0..n {
            let yv = self.ld_f64(y, i)?;
            let xv = self.ld_f64(x, i)?;
            self.st_f64(y, i, yv + alpha * xv)?;
            self.work(work_per)?;
        }
        Ok(())
    }

    // ---- compiled access plans --------------------------------------------

    /// Runs the element map `f` over `reads`/`writes` columns through a
    /// compiled access plan. The canonical per-element order is: load
    /// every read column (in slice order), call `f`, store every write
    /// column (in slice order), account `work_per` instructions.
    ///
    /// The first call (or any call after the plan was invalidated by a
    /// TLB shootdown, a migration, or a shape change) runs that exact
    /// loop element-by-element through the session — translating,
    /// faulting and charging like the scalar path — while recording the
    /// canonical physical address of every access into `plan`.
    /// Subsequent calls replay the recorded sequence in flush-bounded
    /// chunks: timing through [`stramash_mem::MemorySystem::run_plan`]
    /// over the dense fast-path mirrors, values element-major through
    /// the untimed store, so any dependence pattern (including a write
    /// column also being a read column) stays value-exact.
    ///
    /// # Errors
    ///
    /// Translation errors.
    pub fn plan_map<F>(
        &mut self,
        plan: &mut ScopePlan,
        reads: &[ArrayF64],
        writes: &[ArrayF64],
        n: u64,
        work_per: u64,
        mut f: F,
    ) -> Result<(), OsError>
    where
        F: FnMut(u64, &[f64], &mut [f64]),
    {
        if n == 0 {
            return Ok(());
        }
        let mut rv = vec![0.0f64; reads.len()];
        let mut wv = vec![0.0f64; writes.len()];
        if !self.fast || reads.len() + writes.len() == 0 {
            // Reference execution: the canonical loop through the
            // scalar/batched element ops.
            for i in 0..n {
                for (j, a) in reads.iter().enumerate() {
                    rv[j] = self.ld_f64(*a, i)?;
                }
                wv.fill(0.0);
                f(i, &rv, &mut wv);
                for (j, a) in writes.iter().enumerate() {
                    self.st_f64(*a, i, wv[j])?;
                }
                self.work(work_per)?;
            }
            return Ok(());
        }
        if !plan.matches(&self.c.session, reads, writes, n, work_per) {
            return self.plan_compile(plan, reads, writes, n, work_per, &mut f);
        }
        self.plan_replay(plan, reads.len(), writes.len(), n, work_per, &mut f)
    }

    /// The recording pass behind [`BatchScope::plan_map`]: the exact
    /// canonical loop, element ops via the session, every canonical
    /// physical address appended to the plan.
    fn plan_compile<F>(
        &mut self,
        plan: &mut ScopePlan,
        reads: &[ArrayF64],
        writes: &[ArrayF64],
        n: u64,
        work_per: u64,
        f: &mut F,
    ) -> Result<(), OsError>
    where
        F: FnMut(u64, &[f64], &mut [f64]),
    {
        plan.valid = false;
        plan.plan.clear();
        let start_generation = self.c.session.generation();
        let start_domain = self.c.session.domain();
        let mut rv = vec![0.0f64; reads.len()];
        let mut wv = vec![0.0f64; writes.len()];
        for i in 0..n {
            for (j, a) in reads.iter().enumerate() {
                let va = a.at(i);
                let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, false)?;
                let domain = self.c.session.domain();
                let base = self.c.sys.base_mut();
                let pa = base.mem.canonicalize(domain, pa);
                let (bits, cyc) = base.mem.read_u64_aligned(domain, pa);
                base.charge(domain, cyc);
                plan.plan.push(pa.raw(), false);
                rv[j] = f64::from_bits(bits);
            }
            wv.fill(0.0);
            f(i, &rv, &mut wv);
            for (j, a) in writes.iter().enumerate() {
                let va = a.at(i);
                let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, true)?;
                let domain = self.c.session.domain();
                let base = self.c.sys.base_mut();
                let pa = base.mem.canonicalize(domain, pa);
                let cyc = base.mem.write_u64_aligned(domain, pa, wv[j].to_bits());
                base.charge(domain, cyc);
                plan.plan.push(pa.raw(), true);
            }
            self.c.work(work_per)?;
        }
        // Adopt the recording only if no invalidation moved the session
        // mid-compile (a fault that shot down translations would leave
        // early recorded addresses stale).
        if self.c.session.is_valid()
            && self.c.session.generation() == start_generation
            && self.c.session.domain() == start_domain
        {
            plan.valid = true;
            plan.domain = start_domain;
            plan.generation = start_generation;
            plan.n = n;
            plan.work_per = work_per;
            plan.reads = reads.iter().map(|a| a.base().raw()).collect();
            plan.writes = writes.iter().map(|a| a.base().raw()).collect();
        }
        Ok(())
    }

    /// The replay pass behind [`BatchScope::plan_map`]: timing in
    /// flush-bounded chunks over the compiled sequence, values
    /// element-major through the untimed store.
    fn plan_replay<F>(
        &mut self,
        plan: &ScopePlan,
        n_reads: usize,
        n_writes: usize,
        n: u64,
        work_per: u64,
        f: &mut F,
    ) -> Result<(), OsError>
    where
        F: FnMut(u64, &[f64], &mut [f64]),
    {
        let ope = n_reads + n_writes;
        let domain = plan.domain;
        let mut rv = vec![0.0f64; n_reads];
        let mut wv = vec![0.0f64; n_writes];
        let mut i = 0u64;
        while i < n {
            let m = (n - i).min(self.flush_cap(work_per) as u64).max(1);
            let lo = i as usize * ope;
            let hi = lo + m as usize * ope;
            {
                let base = self.c.sys.base_mut();
                // Every op is a session hit at replay (the generation
                // check proved no shootdown since compile): one
                // zero-cycle TLB hit per op, like the recorded loop.
                base.mem.note_tlb_hits(domain, m * ope as u64);
                let cyc = base.mem.run_plan(domain, &plan.plan, lo..hi);
                base.charge(domain, cyc);
                for k in 0..m {
                    let at = lo + k as usize * ope;
                    let addrs = &plan.plan.addrs()[at..at + ope];
                    for (j, v) in rv.iter_mut().enumerate() {
                        *v = f64::from_bits(
                            base.mem.store().read_u64(stramash_mem::PhysAddr::new(addrs[j])),
                        );
                    }
                    wv.fill(0.0);
                    f(i + k, &rv, &mut wv);
                    for (j, v) in wv.iter().enumerate() {
                        base.mem.store_mut().write_u64(
                            stramash_mem::PhysAddr::new(addrs[n_reads + j]),
                            v.to_bits(),
                        );
                    }
                }
            }
            for _ in 0..m {
                self.c.work(work_per)?;
            }
            i += m;
        }
        Ok(())
    }

    /// Maps `f` over `i in 0..n` where each element touches data-
    /// dependent targets: every column is a [`PlanCol`] whose element
    /// index may come from the loop counter ([`ColSpec::Dense`]), a
    /// host-side index slice ([`ColSpec::Index`]), or a value loaded by
    /// an earlier read column of the same element ([`ColSpec::Value`] —
    /// histogram / rank-scatter indirection).
    ///
    /// Unlike [`BatchScope::plan_map`], the op sequence cannot be
    /// recorded once: targets move between calls. What *is* stable is
    /// the translation of each page, so the plan compiles lazily — the
    /// first element to land on a page goes through the session
    /// (recording the canonical frame), and every later landing on that
    /// page replays through [`run_plan`] without re-translating.
    /// Per-element targets are recomputed from `idx` and the loaded
    /// values on every call; the page tables persist across calls while
    /// the session generation and column set are unchanged.
    ///
    /// Timing is identical to the canonical scalar loop: replayed ops
    /// charge exactly what the session-hit element ops would, boundary
    /// (first-touch) elements run the element ops themselves, and
    /// `work(work_per)` retires per element inside flush-bounded
    /// chunks. Values flow element-major through the untimed store, so
    /// read-after-write dependences (a write column aliasing a read
    /// column) stay value-exact.
    ///
    /// # Errors
    ///
    /// Translation errors.
    ///
    /// # Panics
    ///
    /// Panics if a resolved element index is out of bounds for its
    /// column (the same panic the scalar loop's `at()` would raise).
    ///
    /// [`run_plan`]: stramash_mem::MemorySystem::run_plan
    #[allow(clippy::too_many_arguments)] // the plan_map signature plus the index slices
    pub fn plan_map_indexed<F>(
        &mut self,
        plan: &mut IndexedPlan,
        reads: &[PlanCol],
        writes: &[PlanCol],
        idx: &[&[u64]],
        n: u64,
        work_per: u64,
        mut f: F,
    ) -> Result<(), OsError>
    where
        F: FnMut(u64, &[u64], &mut [u64]),
    {
        if n == 0 {
            return Ok(());
        }
        let mut rv = vec![0u64; reads.len()];
        let mut wv = vec![0u64; writes.len()];
        if !self.fast || reads.len() + writes.len() == 0 {
            // Reference execution: the canonical loop through the
            // scalar element ops.
            for i in 0..n {
                for j in 0..reads.len() {
                    let e = reads[j].resolve(i, idx, &rv[..j]);
                    rv[j] = self.c.sys.load_u64(self.c.pid, reads[j].at(e))?;
                }
                wv.fill(0);
                f(i, &rv, &mut wv);
                for (j, c) in writes.iter().enumerate() {
                    let e = c.resolve(i, idx, &rv);
                    self.c.sys.store_u64(self.c.pid, c.at(e), wv[j])?;
                }
                self.c.work(work_per)?;
            }
            return Ok(());
        }
        if !plan.matches(&self.c.session, reads, writes) {
            plan.reset(&self.c.session, reads, writes);
        }
        let n_reads = reads.len();
        let ope = n_reads + writes.len();
        let mut domain = plan.domain;
        let mut scratch = std::mem::take(&mut plan.scratch);
        scratch.clear();
        let mut pas = vec![0u64; ope];
        let mut pend: usize = 0; // elements batched since the last flush
        let mut window = self.flush_cap(work_per).max(1);
        let mut i = 0u64;
        while i < n {
            // Resolve every op of element i before committing any: one
            // unknown page drops the whole element to the session path.
            let mut ok = plan.valid;
            if ok {
                for j in 0..n_reads {
                    let e = reads[j].resolve(i, idx, &rv[..j]);
                    match plan.lookup(j, reads[j].at(e).raw()) {
                        Some(pa) => {
                            pas[j] = pa;
                            rv[j] = self
                                .c
                                .sys
                                .base()
                                .mem
                                .store()
                                .read_u64(stramash_mem::PhysAddr::new(pa));
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                for j in 0..writes.len() {
                    let e = writes[j].resolve(i, idx, &rv);
                    match plan.lookup(n_reads + j, writes[j].at(e).raw()) {
                        Some(pa) => pas[n_reads + j] = pa,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                for &pa in &pas[..n_reads] {
                    scratch.push(pa, false);
                }
                wv.fill(0);
                f(i, &rv, &mut wv);
                let base = self.c.sys.base_mut();
                for (j, v) in wv.iter().enumerate() {
                    base.mem
                        .store_mut()
                        .write_u64(stramash_mem::PhysAddr::new(pas[n_reads + j]), *v);
                    scratch.push(pas[n_reads + j], true);
                }
                pend += 1;
                if pend >= window {
                    self.indexed_flush(domain, &scratch, pend, ope, work_per)?;
                    scratch.clear();
                    pend = 0;
                    window = self.flush_cap(work_per).max(1);
                }
            } else {
                // Flush batched ops first so the access order matches
                // the scalar loop, then run this element through the
                // session, recording the pages it touches.
                if pend > 0 {
                    self.indexed_flush(domain, &scratch, pend, ope, work_per)?;
                    scratch.clear();
                    pend = 0;
                }
                self.indexed_element_session(
                    plan, reads, writes, idx, i, work_per, &mut rv, &mut wv, &mut f,
                )?;
                domain = plan.domain; // a fault may have re-keyed the plan
                window = self.flush_cap(work_per).max(1);
            }
            i += 1;
        }
        if pend > 0 {
            self.indexed_flush(domain, &scratch, pend, ope, work_per)?;
            scratch.clear();
        }
        plan.scratch = scratch;
        Ok(())
    }

    /// One flush-bounded replay chunk of [`BatchScope::plan_map_indexed`]:
    /// every op is a session TLB hit (its page was recorded under this
    /// generation), timed through `run_plan`, with the elements' `work`
    /// retired behind the accesses exactly like [`BatchScope::plan_replay`].
    fn indexed_flush(
        &mut self,
        domain: DomainId,
        scratch: &AccessPlan,
        m: usize,
        ope: usize,
        work_per: u64,
    ) -> Result<(), OsError> {
        let base = self.c.sys.base_mut();
        base.mem.note_tlb_hits(domain, (m * ope) as u64);
        let cyc = base.mem.run_plan(domain, scratch, 0..scratch.len());
        base.charge(domain, cyc);
        for _ in 0..m {
            self.c.work(work_per)?;
        }
        Ok(())
    }

    /// The boundary path of [`BatchScope::plan_map_indexed`]: one
    /// element through the session element ops (the canonical loop
    /// body), recording each touched page's canonical frame so later
    /// landings replay. A fault mid-element shoots down translations;
    /// the tables re-key to the new generation and refill lazily.
    #[allow(clippy::too_many_arguments)] // internal: the full per-element state
    fn indexed_element_session<F>(
        &mut self,
        plan: &mut IndexedPlan,
        reads: &[PlanCol],
        writes: &[PlanCol],
        idx: &[&[u64]],
        i: u64,
        work_per: u64,
        rv: &mut [u64],
        wv: &mut [u64],
        f: &mut F,
    ) -> Result<(), OsError>
    where
        F: FnMut(u64, &[u64], &mut [u64]),
    {
        for j in 0..reads.len() {
            let e = reads[j].resolve(i, idx, &rv[..j]);
            let va = reads[j].at(e);
            let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, false)?;
            let domain = self.c.session.domain();
            let base = self.c.sys.base_mut();
            let pa = base.mem.canonicalize(domain, pa);
            let (bits, cyc) = base.mem.read_u64_aligned(domain, pa);
            base.charge(domain, cyc);
            plan.record(j, va.raw(), pa.raw());
            rv[j] = bits;
        }
        wv.fill(0);
        f(i, rv, wv);
        for (j, c) in writes.iter().enumerate() {
            let e = c.resolve(i, idx, rv);
            let va = c.at(e);
            let (pa, _) = self.c.sys.session_translate(&mut self.c.session, va, true)?;
            let domain = self.c.session.domain();
            let base = self.c.sys.base_mut();
            let pa = base.mem.canonicalize(domain, pa);
            let cyc = base.mem.write_u64_aligned(domain, pa, wv[j]);
            base.charge(domain, cyc);
            plan.record(reads.len() + j, va.raw(), pa.raw());
        }
        self.c.work(work_per)?;
        if self.c.session.is_valid() {
            if self.c.session.generation() != plan.generation
                || self.c.session.domain() != plan.domain
            {
                plan.reset(&self.c.session, reads, writes);
            }
        } else {
            plan.invalidate();
        }
        Ok(())
    }
}

/// A compiled [`BatchScope::plan_map`] loop nest: the canonical access
/// sequence recorded once and replayed while it provably still
/// describes the live translations (same session domain, same TLB
/// generation, same shape). Create it outside the iteration loop and
/// pass it to every `plan_map` call; invalidation is automatic.
#[derive(Debug, Clone)]
pub struct ScopePlan {
    valid: bool,
    domain: DomainId,
    generation: u64,
    n: u64,
    work_per: u64,
    reads: Vec<u64>,
    writes: Vec<u64>,
    plan: AccessPlan,
}

impl Default for ScopePlan {
    fn default() -> Self {
        ScopePlan {
            valid: false,
            domain: DomainId::X86,
            generation: 0,
            n: 0,
            work_per: 0,
            reads: Vec::new(),
            writes: Vec::new(),
            plan: AccessPlan::default(),
        }
    }
}

impl ScopePlan {
    /// Creates an empty (uncompiled) plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan currently holds a compiled sequence.
    #[must_use]
    pub fn is_compiled(&self) -> bool {
        self.valid
    }

    /// Drops the compiled sequence (the next `plan_map` recompiles).
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.plan.clear();
    }

    /// Whether the compiled sequence still describes this exact loop
    /// over the session's current translations.
    fn matches(
        &self,
        session: &AccessSession,
        reads: &[ArrayF64],
        writes: &[ArrayF64],
        n: u64,
        work_per: u64,
    ) -> bool {
        self.valid
            && session.is_valid()
            && self.domain == session.domain()
            && self.generation == session.generation()
            && self.n == n
            && self.work_per == work_per
            && self.reads.len() == reads.len()
            && self.writes.len() == writes.len()
            && self.reads.iter().zip(reads).all(|(&b, a)| b == a.base().raw())
            && self.writes.iter().zip(writes).all(|(&b, a)| b == a.base().raw())
    }
}

/// How a [`PlanCol`] turns the loop counter into an element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColSpec {
    /// `e = i * stride + offset` — an affine walk known at loop entry.
    Dense {
        /// Elements advanced per loop iteration.
        stride: u64,
        /// Element index at `i = 0`.
        offset: u64,
    },
    /// `e = idx[slice][i] + offset` — a gather/scatter driven by one of
    /// the host-side index slices passed to
    /// [`BatchScope::plan_map_indexed`] (stencil neighbours, interior
    /// cells, FFT butterfly pairs).
    Index {
        /// Which of the `idx` slices supplies the element index.
        slice: usize,
        /// Signed element offset added to the slice value.
        offset: i64,
    },
    /// `e = rv[col] + offset` — the target is a value this element just
    /// loaded (histogram buckets, rank-scatter positions). Read columns
    /// may only reference earlier read columns; write columns see every
    /// read value.
    Value {
        /// Which read column's loaded value supplies the element index.
        col: usize,
        /// Signed element offset added to the loaded value.
        offset: i64,
    },
}

/// One array column of a data-dependent plan segment: a typed array
/// plus the rule producing its element index per iteration.
#[derive(Debug, Clone, Copy)]
pub struct PlanCol {
    base: VirtAddr,
    len: u64,
    spec: ColSpec,
}

impl PlanCol {
    /// A column over an `f64` array (values travel as raw bits through
    /// the `u64` closure interface; convert with `f64::from_bits`).
    #[must_use]
    pub fn f64(a: ArrayF64, spec: ColSpec) -> Self {
        PlanCol { base: a.base(), len: a.len(), spec }
    }

    /// A column over a `u64` array.
    #[must_use]
    pub fn u64(a: ArrayU64, spec: ColSpec) -> Self {
        PlanCol { base: a.base(), len: a.len(), spec }
    }

    /// Resolves the element index for iteration `i`.
    ///
    /// # Panics
    ///
    /// Panics when the resolved index is out of bounds — the same panic
    /// the scalar loop's `at()` would raise.
    fn resolve(&self, i: u64, idx: &[&[u64]], rv: &[u64]) -> u64 {
        let e = match self.spec {
            ColSpec::Dense { stride, offset } => i.wrapping_mul(stride).wrapping_add(offset),
            ColSpec::Index { slice, offset } => {
                (idx[slice][i as usize] as i64).wrapping_add(offset) as u64
            }
            ColSpec::Value { col, offset } => (rv[col] as i64).wrapping_add(offset) as u64,
        };
        assert!(e < self.len, "index {e} out of bounds ({})", self.len);
        e
    }

    /// Address of element `e` (bounds already checked by `resolve`).
    fn at(&self, e: u64) -> VirtAddr {
        self.base.offset(e * 8)
    }
}

/// The compiled state behind [`BatchScope::plan_map_indexed`]: one lazy
/// page table per column, mapping each virtual page of the array's span
/// to its canonical physical frame. Targets move call to call, but
/// translations do not — so the tables persist across calls (and across
/// different [`ColSpec`]s over the same arrays) while the session
/// domain, TLB generation and column arrays are unchanged. Create it
/// once outside the iteration loop; invalidation is automatic.
#[derive(Debug, Clone)]
pub struct IndexedPlan {
    valid: bool,
    domain: DomainId,
    generation: u64,
    /// `(base, len)` per column, reads then writes — the signature the
    /// tables were built for.
    cols: Vec<(u64, u64)>,
    /// First virtual page of each column's span.
    page0: Vec<u64>,
    /// Per column: virtual page index → canonical physical frame base
    /// (`u64::MAX` = not yet translated this generation).
    tables: Vec<Vec<u64>>,
    /// Reused op buffer for replay chunks.
    scratch: AccessPlan,
}

impl Default for IndexedPlan {
    fn default() -> Self {
        IndexedPlan {
            valid: false,
            domain: DomainId::X86,
            generation: 0,
            cols: Vec::new(),
            page0: Vec::new(),
            tables: Vec::new(),
            scratch: AccessPlan::default(),
        }
    }
}

impl IndexedPlan {
    /// Creates an empty (uncompiled) plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any page translations are currently compiled.
    #[must_use]
    pub fn is_compiled(&self) -> bool {
        self.valid && self.tables.iter().flatten().any(|&p| p != u64::MAX)
    }

    /// Count of compiled (replayable) page translations across columns.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.tables.iter().flatten().filter(|&&p| p != u64::MAX).count()
    }

    /// Drops every compiled translation (the next call refills lazily).
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.cols.clear();
        self.page0.clear();
        self.tables.clear();
    }

    /// Whether the tables still describe this column set under the
    /// session's current translations.
    fn matches(&self, session: &AccessSession, reads: &[PlanCol], writes: &[PlanCol]) -> bool {
        self.valid
            && session.is_valid()
            && self.domain == session.domain()
            && self.generation == session.generation()
            && self.cols.len() == reads.len() + writes.len()
            && self
                .cols
                .iter()
                .zip(reads.iter().chain(writes))
                .all(|(&(b, l), c)| b == c.base.raw() && l == c.len)
    }

    /// Re-keys the tables to the session's current generation with
    /// every page unknown.
    fn reset(&mut self, session: &AccessSession, reads: &[PlanCol], writes: &[PlanCol]) {
        self.domain = session.domain();
        self.generation = session.generation();
        self.cols.clear();
        self.page0.clear();
        self.tables.clear();
        for c in reads.iter().chain(writes) {
            let p0 = c.base.raw() & !(PAGE_SIZE - 1);
            let end = c.base.raw() + c.len.max(1) * 8 - 1;
            let pages = ((end & !(PAGE_SIZE - 1)) - p0) / PAGE_SIZE + 1;
            self.cols.push((c.base.raw(), c.len));
            self.page0.push(p0);
            self.tables.push(vec![u64::MAX; pages as usize]);
        }
        self.valid = true;
    }

    /// Canonical physical address for `va` in column `col`, if its page
    /// is compiled.
    fn lookup(&self, col: usize, va: u64) -> Option<u64> {
        let pi = ((va - self.page0[col]) / PAGE_SIZE) as usize;
        let frame = self.tables[col][pi];
        (frame != u64::MAX).then_some(frame | (va & (PAGE_SIZE - 1)))
    }

    /// Records a session-translated canonical frame for `va`'s page.
    fn record(&mut self, col: usize, va: u64, pa: u64) {
        if !self.valid {
            return;
        }
        let pi = ((va - self.page0[col]) / PAGE_SIZE) as usize;
        self.tables[col][pi] = pa & !(PAGE_SIZE - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::system::VanillaSystem;
    use stramash_sim::SimConfig;

    fn client_env() -> (VanillaSystem, Pid) {
        let mut sys = VanillaSystem::new(SimConfig::big_pair()).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        (sys, pid)
    }

    #[test]
    fn typed_array_roundtrip() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        let a = c.alloc_f64(100).unwrap();
        let b = c.alloc_u64(100).unwrap();
        for i in 0..100 {
            c.st_f64(a, i, i as f64 * 0.5).unwrap();
            c.st_u64(b, i, i * 3).unwrap();
        }
        for i in 0..100 {
            assert_eq!(c.ld_f64(a, i).unwrap(), i as f64 * 0.5);
            assert_eq!(c.ld_u64(b, i).unwrap(), i * 3);
        }
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let a = ArrayF64 { base: VirtAddr::new(0x4000_0000), len: 4 };
        let _ = a.at(4);
    }

    #[test]
    fn work_batches_and_flushes() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        for _ in 0..100 {
            c.work(10).unwrap();
        }
        c.flush_work().unwrap();
        assert_eq!(sys.base().timebase.clock(DomainId::X86).icount(), 1000);
    }

    /// A mixed pattern exercising every scope op: slice stores/loads,
    /// fills, pairs, element ops, the fused helpers, and interleaved
    /// `work` — enough to cross pages, cache lines and exec flushes.
    fn scope_pattern(sys: &mut VanillaSystem, pid: Pid) -> f64 {
        let mut c = MemoryClient::new(sys, pid);
        let a = c.alloc_f64(600).unwrap();
        let b = c.alloc_f64(600).unwrap();
        let k = c.alloc_u64(600).unwrap();
        let mut acc = 0.0f64;
        {
            let mut s = c.batch().unwrap();
            let kv: Vec<u64> = (0..600).map(|i| i * 7).collect();
            s.st_u64_slice(k, 0, &kv, 3).unwrap();
            let av: Vec<f64> = (0..600).map(|i| i as f64 * 0.25).collect();
            s.st_f64_slice(a, 0, &av, 2).unwrap();
            s.fill_u64(k, 100, 200, 9, 1).unwrap();
            for i in 0..300 {
                let v = s.ld_f64(a, i).unwrap();
                s.st_f64(b, i, v + 1.0).unwrap();
                acc += s.ld_u64(k, i).unwrap() as f64;
                s.work(5).unwrap();
            }
            for i in 150..300 {
                let (x, y) = s.ld_f64_pair(a, 2 * i).unwrap();
                s.st_f64_pair(b, 2 * i, x + y, x - y).unwrap();
                s.work(4).unwrap();
            }
            acc += s.dot_f64(a, b, 600, 4).unwrap();
            s.axpy_f64(0.5, a, b, 600, 6).unwrap();
            let idx: Vec<u64> = (0..100).map(|i| (i * 37) % 600).collect();
            let mut out = Vec::new();
            s.gather_f64(a, &idx, &mut out, 2).unwrap();
            acc += out.iter().sum::<f64>();
            let mut back = vec![0.0f64; 600];
            s.ld_f64_slice(b, 0, &mut back, 3).unwrap();
            acc += back.iter().sum::<f64>();
        }
        c.flush_work().unwrap();
        acc
    }

    /// Data-dependent plan segments: a histogram (value-indexed
    /// read-modify-write), a rank scatter through an index slice, and a
    /// replay of the same segment with moved targets over the compiled
    /// pages.
    fn indexed_pattern(sys: &mut VanillaSystem, pid: Pid) -> u64 {
        let mut c = MemoryClient::new(sys, pid);
        let keys = c.alloc_u64(512).unwrap();
        let hist = c.alloc_u64(64).unwrap();
        let out = c.alloc_u64(512).unwrap();
        let mut acc = 0u64;
        {
            let mut s = c.batch().unwrap();
            let kv: Vec<u64> = (0..512).map(|i| (i * 37) % 64).collect();
            s.st_u64_slice(keys, 0, &kv, 2).unwrap();
            s.fill_u64(hist, 0, 64, 0, 1).unwrap();
            let dense = ColSpec::Dense { stride: 1, offset: 0 };
            let bucket = ColSpec::Value { col: 0, offset: 0 };
            let mut plan = IndexedPlan::new();
            // hist[keys[i]] += 1 — the IS histogram shape.
            s.plan_map_indexed(
                &mut plan,
                &[PlanCol::u64(keys, dense), PlanCol::u64(hist, bucket)],
                &[PlanCol::u64(hist, bucket)],
                &[],
                512,
                6,
                |_, rv, wv| wv[0] = rv[1] + 1,
            )
            .unwrap();
            // out[idx[i]] = 3*keys[i] + 1 — an index-slice scatter; two
            // passes with different slices replay over compiled pages.
            let mut plan2 = IndexedPlan::new();
            for mul in [131u64, 257] {
                let idxs: Vec<u64> = (0..512).map(|i| (i * mul) % 512).collect();
                s.plan_map_indexed(
                    &mut plan2,
                    &[PlanCol::u64(keys, dense)],
                    &[PlanCol::u64(out, ColSpec::Index { slice: 0, offset: 0 })],
                    &[&idxs],
                    512,
                    4,
                    |_, rv, wv| wv[0] = rv[0] * 3 + 1,
                )
                .unwrap();
            }
            for i in 0..64 {
                acc = acc.wrapping_mul(1_000_003).wrapping_add(s.ld_u64(hist, i).unwrap());
            }
            for i in 0..512 {
                acc = acc.wrapping_mul(1_000_003).wrapping_add(s.ld_u64(out, i).unwrap());
            }
        }
        c.flush_work().unwrap();
        acc
    }

    #[test]
    fn indexed_plan_is_cycle_identical_to_scalar() {
        let run = |batching: bool| {
            let (mut sys, pid) = client_env();
            sys.base_mut().set_batching(batching);
            let acc = indexed_pattern(&mut sys, pid);
            let clock = *sys.base().timebase.clock(DomainId::X86);
            let stats = *sys.base().mem.stats(DomainId::X86);
            (acc, clock, stats)
        };
        let (fast_acc, fast_clock, fast_stats) = run(true);
        let (ref_acc, ref_clock, ref_stats) = run(false);
        assert_eq!(fast_acc, ref_acc, "values must match bit-for-bit");
        assert_eq!(fast_clock, ref_clock, "icount and memory cycles must match");
        assert_eq!(fast_stats, ref_stats, "every stats counter must match");
    }

    #[test]
    fn batched_scope_is_cycle_identical_to_scalar() {
        let run = |batching: bool| {
            let (mut sys, pid) = client_env();
            sys.base_mut().set_batching(batching);
            let acc = scope_pattern(&mut sys, pid);
            let clock = *sys.base().timebase.clock(DomainId::X86);
            let stats = *sys.base().mem.stats(DomainId::X86);
            (acc, clock, stats)
        };
        let (fast_acc, fast_clock, fast_stats) = run(true);
        let (ref_acc, ref_clock, ref_stats) = run(false);
        assert_eq!(fast_acc, ref_acc, "values must match bit-for-bit");
        assert_eq!(fast_clock, ref_clock, "icount and memory cycles must match");
        assert_eq!(fast_stats, ref_stats, "every stats counter must match");
        assert!(fast_stats.tlb_hits > 0, "the pattern must exercise TLB hits");
    }

    /// A CG-shaped plan-mapped pattern: three rounds over the same
    /// [`ScopePlan`] (one compile, two replays), with a column that is
    /// both read and written and a per-round scalar threaded through
    /// the closure.
    fn plan_pattern(sys: &mut VanillaSystem, pid: Pid) -> f64 {
        let mut c = MemoryClient::new(sys, pid);
        let x = c.alloc_f64(700).unwrap();
        let d = c.alloc_f64(700).unwrap();
        let r = c.alloc_f64(700).unwrap();
        let mut plan = ScopePlan::new();
        let mut acc = 0.0f64;
        {
            let mut s = c.batch().unwrap();
            let xv: Vec<f64> = (0..700).map(|i| i as f64 * 0.5).collect();
            s.st_f64_slice(x, 0, &xv, 2).unwrap();
            let dv: Vec<f64> = (0..700).map(|i| 1.0 + i as f64 * 0.125).collect();
            s.st_f64_slice(d, 0, &dv, 2).unwrap();
            let rv: Vec<f64> = (0..700).map(|i| 2.0 - i as f64 * 0.0625).collect();
            s.st_f64_slice(r, 0, &rv, 2).unwrap();
            for round in 0..3 {
                let alpha = 0.25 + f64::from(round);
                let mut rho = 0.0f64;
                s.plan_map(&mut plan, &[x, d, r], &[x, r], 700, 10, |_i, rv, wv| {
                    wv[0] = rv[0] + alpha * rv[1];
                    wv[1] = rv[2] - alpha * rv[1];
                    rho += wv[1] * wv[1];
                })
                .unwrap();
                acc += rho;
            }
        }
        c.flush_work().unwrap();
        acc
    }

    #[test]
    fn plan_map_is_cycle_identical_to_scalar() {
        let run = |batching: bool| {
            let (mut sys, pid) = client_env();
            sys.base_mut().set_batching(batching);
            let acc = plan_pattern(&mut sys, pid);
            let clock = *sys.base().timebase.clock(DomainId::X86);
            let stats = *sys.base().mem.stats(DomainId::X86);
            (acc, clock, stats)
        };
        let (fast_acc, fast_clock, fast_stats) = run(true);
        let (ref_acc, ref_clock, ref_stats) = run(false);
        assert_eq!(fast_acc, ref_acc, "plan replay must be value-exact");
        assert_eq!(fast_clock, ref_clock, "compile + replay must keep the clock");
        assert_eq!(fast_stats, ref_stats, "every stats counter must match");
    }

    #[test]
    fn plan_invalidation_forces_recompile() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        let a = c.alloc_f64(64).unwrap();
        let b = c.alloc_f64(64).unwrap();
        let mut plan = ScopePlan::new();
        let mut s = c.batch().unwrap();
        s.st_f64_slice(a, 0, &[3.0; 64], 1).unwrap();
        s.plan_map(&mut plan, &[a], &[b], 64, 2, |_i, rv, wv| wv[0] = rv[0] * 2.0)
            .unwrap();
        assert!(plan.is_compiled());
        // A replay over the compiled sequence stays value-exact.
        s.plan_map(&mut plan, &[a], &[b], 64, 2, |_i, rv, wv| wv[0] = rv[0] + 1.0)
            .unwrap();
        assert_eq!(s.ld_f64(b, 5).unwrap(), 4.0);
        // Shape changes and explicit invalidation both force recompiles.
        assert!(plan.is_compiled());
        s.plan_map(&mut plan, &[a], &[b], 32, 2, |_i, rv, wv| wv[0] = rv[0] - 1.0)
            .unwrap();
        assert_eq!(s.ld_f64(b, 5).unwrap(), 2.0);
        plan.invalidate();
        assert!(!plan.is_compiled());
        s.plan_map(&mut plan, &[a], &[b], 32, 2, |_i, rv, wv| wv[0] = rv[0] * 3.0)
            .unwrap();
        assert!(plan.is_compiled());
        assert_eq!(s.ld_f64(b, 5).unwrap(), 9.0);
    }

    #[test]
    fn arrays_do_not_alias() {
        let (mut sys, pid) = client_env();
        let mut c = MemoryClient::new(&mut sys, pid);
        let a = c.alloc_u64(16).unwrap();
        let b = c.alloc_u64(16).unwrap();
        c.st_u64(a, 0, 111).unwrap();
        c.st_u64(b, 0, 222).unwrap();
        assert_eq!(c.ld_u64(a, 0).unwrap(), 111);
    }
}
