//! Crash-recovery supervisor: stepped workloads under a watchdog.
//!
//! The recovery state machine of DESIGN.md §10.3. A workload is run as
//! a sequence of *steps* (one KV request, one NPB ranking procedure);
//! between steps the supervisor takes periodic checkpoints and drives
//! [`BaseSystem::watchdog_tick`], so a [`FaultPlan`] crash manifests as
//! heartbeat silence and — after the watchdog declares the domain dead
//! and quarantines its messages and locks — recovery proceeds by
//! policy:
//!
//! * [`RecoveryPolicy::RestartFromCheckpoint`] — rebuild a fresh
//!   machine, restore the last checkpoint artifact (system *and*
//!   workload cursor in one atomic snapshot), disarm the already-fired
//!   crash and replay the step backlog. Replay is deterministic, so the
//!   finished run is byte-identical to an uninterrupted one.
//! * [`RecoveryPolicy::Degrade`] — the surviving kernel adopts the
//!   work: DSM entries fail over, the process is re-homed, migration is
//!   suppressed, and the survivor drains the remaining steps alone.
//!
//! [`BaseSystem::watchdog_tick`]: stramash_kernel::system::BaseSystem::watchdog_tick
//! [`FaultPlan`]: stramash_sim::FaultPlan

use crate::client::{ArrayU64, MemoryClient};
use crate::kvstore::{fnv, KvOp, KvRunResult, KvServer};
use crate::npb::{offload, Class, DataRng, NpbOutcome};
use crate::target::TargetSystem;
use stramash_kernel::msg::{Message, MsgType};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};
use stramash_kernel::watchdog::DEFAULT_THRESHOLD;
use stramash_sim::checkpoint::{CheckpointError, Decoder, Encoder};
use stramash_sim::trace::{TraceEvent, CTR_RECOVERY_RESTARTS};
use stramash_sim::DomainId;

/// What the supervisor does once the watchdog declares a domain dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// The surviving kernel adopts the work and drains it alone.
    Degrade,
    /// Rebuild from the last checkpoint and replay the step backlog.
    RestartFromCheckpoint,
}

/// Supervisor knobs.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Dead-domain policy.
    pub policy: RecoveryPolicy,
    /// Steps between periodic checkpoints (0 = only the baseline
    /// snapshot taken before step 0).
    pub checkpoint_every: u64,
    /// Heartbeat misses before the watchdog declares death.
    pub watchdog_threshold: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            policy: RecoveryPolicy::RestartFromCheckpoint,
            checkpoint_every: 16,
            watchdog_threshold: DEFAULT_THRESHOLD,
        }
    }
}

/// A supervised run's result plus the recovery history.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The workload's own outcome.
    pub result: T,
    /// The system as it finished (for fingerprinting and audits).
    pub sys: TargetSystem,
    /// Watchdog deaths observed.
    pub crashes: u32,
    /// Restart-from-checkpoint recoveries performed.
    pub restarts: u32,
    /// `Some(dead)` when the run finished degraded on one kernel.
    pub degraded: Option<DomainId>,
}

/// Section tag of the supervisor's combined artifact ("RCVR").
const RCVR: u32 = 0x5243_5652;

/// A workload the supervisor can checkpoint, replay and re-home.
trait Stepped {
    type Output;
    /// Serializes the workload-side cursor state.
    fn save(&self, e: &mut Encoder);
    /// Restores what [`Stepped::save`] wrote, against the restored
    /// system (for state recomputed from the machine, e.g. the current
    /// domain of the server process).
    fn restore(&mut self, d: &mut Decoder<'_>, sys: &TargetSystem)
        -> Result<(), CheckpointError>;
    /// Executes step `step` (0-based).
    fn step(&mut self, sys: &mut TargetSystem, step: u64) -> Result<(), OsError>;
    /// Re-homes the workload onto `survivor` after a degrade decision.
    fn adopt(&mut self, sys: &mut TargetSystem, survivor: DomainId) -> Result<(), OsError>;
    /// Finishes the run (verification sweeps) and produces the output.
    fn finish(&mut self, sys: &mut TargetSystem) -> Result<Self::Output, OsError>;
}

/// One atomic snapshot: machine checkpoint + workload cursor state.
fn snapshot<W: Stepped>(sys: &TargetSystem, w: &W, cursor: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.tag(RCVR);
    e.bytes(&sys.checkpoint());
    w.save(&mut e);
    e.u64(cursor);
    e.into_bytes()
}

/// Rebuilds a fresh machine from `artifact`, re-wiring the old
/// system's injector and tracer handles, and returns it with the
/// restored step cursor. The fired crash is disarmed so replay does
/// not re-kill the domain.
fn rollback<W: Stepped>(
    old: &TargetSystem,
    artifact: &[u8],
    w: &mut W,
) -> Result<(TargetSystem, u64), OsError> {
    let mut d = Decoder::new(artifact);
    d.tag(RCVR)?;
    let sys_bytes = d.bytes()?.to_vec();
    let mut sys = TargetSystem::build_with(old.kind(), old.config().clone())?;
    if let Some(inj) = old.fault_injector() {
        sys.base_mut().install_fault_injector(inj.clone());
    }
    if let Some(t) = old.tracer() {
        sys.install_tracer(t.clone());
    }
    sys.restore(&sys_bytes)?;
    if let Some(inj) = sys.fault_injector() {
        inj.borrow_mut().disarm_crash();
    }
    // The artifact may predate the crash only by moments; clear any
    // in-progress miss counting so detection restarts from scratch.
    sys.base_mut().watchdog_mut().reset_after_recovery();
    w.restore(&mut d, &sys)?;
    let cursor = d.u64()?;
    Ok((sys, cursor))
}

/// The supervisor loop: step, tick the watchdog, recover by policy.
fn supervise<W: Stepped>(
    mut sys: TargetSystem,
    mut w: W,
    steps: u64,
    rc: &RecoveryConfig,
) -> Result<Recovered<W::Output>, OsError> {
    sys.base_mut().enable_watchdog(rc.watchdog_threshold);
    let mut artifact = snapshot(&sys, &w, 0);
    let mut cursor = 0u64;
    let mut crashes = 0u32;
    let mut restarts = 0u32;
    let mut degraded = None;
    while cursor < steps {
        // Never snapshot inside a crash's silent window (fired but not
        // yet detected): such an artifact would bake the halted domain's
        // missing heartbeats into every replay.
        let halted = {
            let wd = sys.base().watchdog();
            DomainId::ALL.iter().any(|&d| wd.is_halted(d))
        };
        if cursor > 0 && rc.checkpoint_every > 0 && cursor.is_multiple_of(rc.checkpoint_every) && !halted
        {
            artifact = snapshot(&sys, &w, cursor);
        }
        w.step(&mut sys, cursor)?;
        cursor += 1;
        if let Some(report) = sys.base_mut().watchdog_tick(cursor) {
            crashes += 1;
            match rc.policy {
                RecoveryPolicy::RestartFromCheckpoint => {
                    sys.base()
                        .emit(TraceEvent::Recovery { domain: report.dead, stage: "restart" });
                    let (fresh, restored_cursor) = rollback(&sys, &artifact, &mut w)?;
                    sys = fresh;
                    cursor = restored_cursor;
                    restarts += 1;
                    if let Some(t) = sys.tracer() {
                        t.borrow_mut().metrics_mut().inc(CTR_RECOVERY_RESTARTS);
                    }
                    sys.base()
                        .emit(TraceEvent::Recovery { domain: report.dead, stage: "replay" });
                }
                RecoveryPolicy::Degrade => {
                    let survivor = report.dead.other();
                    sys.base()
                        .emit(TraceEvent::Recovery { domain: report.dead, stage: "degrade" });
                    sys.fail_over(report.dead);
                    w.adopt(&mut sys, survivor)?;
                    degraded = Some(report.dead);
                }
            }
        }
    }
    let result = w.finish(&mut sys)?;
    Ok(Recovered { result, sys, crashes, restarts, degraded })
}

// ---------------------------------------------------------------------
// Stepped KV store (one request per step)
// ---------------------------------------------------------------------

struct SteppedKv {
    pid: Pid,
    server: KvServer,
    op: KvOp,
    requests: u64,
    payload: Vec<u8>,
    server_domain: DomainId,
    checksum: u64,
    before: stramash_sim::Cycles,
}

fn op_code(op: KvOp) -> u8 {
    KvOp::ALL.iter().position(|&o| o == op).unwrap_or(0) as u8
}

fn op_from_code(code: u8) -> Result<KvOp, CheckpointError> {
    KvOp::ALL
        .get(code as usize)
        .copied()
        .ok_or(CheckpointError::Malformed("unknown KV op code"))
}

fn key_of(r: u64) -> u64 {
    r.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16
}

impl Stepped for SteppedKv {
    type Output = KvRunResult;

    fn save(&self, e: &mut Encoder) {
        e.tag(0x534b_5653); // "SKVS"
        e.u32(self.pid.0);
        self.server.save_state(e);
        e.u8(op_code(self.op));
        e.u64(self.requests);
        e.u64(self.payload.len() as u64);
        e.u8(self.server_domain.index() as u8);
        e.u64(self.checksum);
        e.u64(self.before.raw());
    }

    fn restore(
        &mut self,
        d: &mut Decoder<'_>,
        _sys: &TargetSystem,
    ) -> Result<(), CheckpointError> {
        d.tag(0x534b_5653)?;
        self.pid = Pid(d.u32()?);
        self.server = KvServer::load_state(d)?;
        self.op = op_from_code(d.u8()?)?;
        self.requests = d.u64()?;
        let payload_len = d.u64()? as usize;
        self.payload = vec![0xab; payload_len];
        self.server_domain = if d.u8()? == 0 { DomainId::X86 } else { DomainId::ARM };
        self.checksum = d.u64()?;
        self.before = stramash_sim::Cycles::new(d.u64()?);
        Ok(())
    }

    fn step(&mut self, sys: &mut TargetSystem, step: u64) -> Result<(), OsError> {
        let client_domain = DomainId::X86;
        let req = Message { ty: MsgType::KvRequest, payload: self.payload.len() as u32 };
        {
            let base = sys.base_mut();
            let send_c = {
                let (msg, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
                msg.send(mem, ipi, client_domain, req)
            };
            let recv_c = {
                let (msg, mem) = (&mut base.msg, &mut base.mem);
                msg.receive(mem, self.server_domain, req)
            };
            base.charge(client_domain, send_c);
            base.charge(self.server_domain, recv_c);
        }
        let resp_len =
            self.server.process(sys, self.pid, self.op, key_of(step), &self.payload)?;
        for b in resp_len.to_le_bytes() {
            self.checksum = fnv(self.checksum, b);
        }
        let resp = Message { ty: MsgType::KvResponse, payload: resp_len };
        let base = sys.base_mut();
        let send_c = {
            let (msg, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
            msg.send(mem, ipi, self.server_domain, resp)
        };
        let recv_c = {
            let (msg, mem) = (&mut base.msg, &mut base.mem);
            msg.receive(mem, client_domain, resp)
        };
        base.charge(self.server_domain, send_c);
        base.charge(client_domain, recv_c);
        Ok(())
    }

    fn adopt(&mut self, sys: &mut TargetSystem, survivor: DomainId) -> Result<(), OsError> {
        if sys.current_domain(self.pid)? != survivor {
            // Forced adoption: the survivor re-homes the task straight
            // from DRAM — no migration protocol with a dead kernel. A
            // survivor without its own page-table format for the task
            // (single-ISA Vanilla) cannot adopt it at all.
            if sys.base().process(self.pid)?.page_tables[survivor.index()].is_none() {
                return Err(OsError::DomainDead(survivor.other()));
            }
            sys.base_mut().process_mut(self.pid)?.current = survivor;
        }
        self.server_domain = survivor;
        Ok(())
    }

    fn finish(&mut self, sys: &mut TargetSystem) -> Result<KvRunResult, OsError> {
        let total = sys.runtime() - self.before;
        let mut checksum = self.checksum;
        for r in 0..self.requests {
            if let Some(stored) = self.server.fetch_string(sys, self.pid, key_of(r))? {
                for b in stored {
                    checksum = fnv(checksum, b);
                }
            }
        }
        Ok(KvRunResult {
            op: self.op,
            requests: self.requests,
            total,
            per_request: total.raw() as f64 / self.requests as f64,
            checksum,
        })
    }
}

/// Runs the Figure 14 KV experiment one request per step under the
/// crash-recovery supervisor. With no installed fault plan this is the
/// stepped-deterministic baseline; with a plan containing a
/// `DomainCrash`, the run recovers by `rc.policy` and — under
/// [`RecoveryPolicy::RestartFromCheckpoint`] — produces a checksum
/// byte-identical to the crash-free baseline.
///
/// # Errors
///
/// OS errors, including checkpoint-decode failures during recovery.
pub fn run_kv_recovered(
    mut sys: TargetSystem,
    op: KvOp,
    requests: u64,
    payload_len: u32,
    rc: &RecoveryConfig,
) -> Result<Recovered<KvRunResult>, OsError> {
    let pid = sys.spawn(DomainId::X86)?;
    let heap = (requests * 6 + 1024) * (24 + u64::from(payload_len) + 64);
    let mut server = KvServer::setup(&mut sys, pid, heap)?;
    let payload = vec![0xabu8; payload_len as usize];
    if sys.kind().migrates() {
        sys.migrate(pid, DomainId::ARM)?;
    }
    match op {
        KvOp::Get => {
            for r in 0..requests {
                server.process(&mut sys, pid, KvOp::Set, key_of(r), &payload)?;
            }
        }
        KvOp::Lpop | KvOp::Rpop => {
            for _ in 0..requests {
                server.process(&mut sys, pid, KvOp::Lpush, 0, &payload)?;
            }
        }
        _ => {}
    }
    let server_domain = sys.current_domain(pid)?;
    let before = sys.runtime();
    let w = SteppedKv {
        pid,
        server,
        op,
        requests,
        payload,
        server_domain,
        checksum: 0xcbf2_9ce4_8422_2325,
        before,
    };
    supervise(sys, w, requests, rc)
}

// ---------------------------------------------------------------------
// Stepped NPB IS (one ranking procedure per step)
// ---------------------------------------------------------------------

struct SteppedIs {
    pid: Pid,
    keys: ArrayU64,
    sorted: ArrayU64,
    hist: ArrayU64,
    max_key: u64,
    migrate: bool,
    verified: bool,
    procedures: u32,
}

fn save_array(e: &mut Encoder, a: ArrayU64) {
    e.u64(a.base().raw());
    e.u64(a.len());
}

fn load_array(d: &mut Decoder<'_>) -> Result<ArrayU64, CheckpointError> {
    let base = d.u64()?;
    let len = d.u64()?;
    Ok(ArrayU64::from_raw(stramash_kernel::addr::VirtAddr::new(base), len))
}

impl Stepped for SteppedIs {
    type Output = NpbOutcome;

    fn save(&self, e: &mut Encoder) {
        e.tag(0x5349_5353); // "SISS"
        e.u32(self.pid.0);
        save_array(e, self.keys);
        save_array(e, self.sorted);
        save_array(e, self.hist);
        e.u64(self.max_key);
        e.bool(self.migrate);
        e.bool(self.verified);
        e.u32(self.procedures);
    }

    fn restore(
        &mut self,
        d: &mut Decoder<'_>,
        _sys: &TargetSystem,
    ) -> Result<(), CheckpointError> {
        d.tag(0x5349_5353)?;
        self.pid = Pid(d.u32()?);
        self.keys = load_array(d)?;
        self.sorted = load_array(d)?;
        self.hist = load_array(d)?;
        self.max_key = d.u64()?;
        self.migrate = d.bool()?;
        self.verified = d.bool()?;
        self.procedures = d.u32()?;
        Ok(())
    }

    fn step(&mut self, sys: &mut TargetSystem, _step: u64) -> Result<(), OsError> {
        let (keys, sorted, hist) = (self.keys, self.sorted, self.hist);
        let (n_keys, max_key) = (keys.len(), self.max_key);
        let mut c = MemoryClient::new(sys, self.pid);
        offload(&mut c, self.migrate, |c| {
            let mut s = c.batch()?;
            s.fill_u64(hist, 0, max_key, 0, 2)?;
            for i in 0..n_keys {
                let k = s.ld_u64(keys, i)?;
                let n = s.ld_u64(hist, k)?;
                s.st_u64(hist, k, n + 1)?;
                s.work(6)?;
            }
            let mut acc = 0u64;
            for b in 0..max_key {
                let n = s.ld_u64(hist, b)?;
                s.st_u64(hist, b, acc)?;
                acc += n;
                s.work(4)?;
            }
            for i in 0..n_keys {
                let k = s.ld_u64(keys, i)?;
                let pos = s.ld_u64(hist, k)?;
                s.st_u64(sorted, pos, k)?;
                s.st_u64(hist, k, pos + 1)?;
                s.work(8)?;
            }
            Ok(())
        })?;
        self.procedures += 1;
        // Partial verification on the origin, as IS does per iteration.
        let step_len = (n_keys / 7).max(1);
        {
            let mut s = c.batch()?;
            let mut i = step_len;
            while i < n_keys {
                let a = s.ld_u64(sorted, i - step_len)?;
                let b = s.ld_u64(sorted, i)?;
                if a > b {
                    self.verified = false;
                    break;
                }
                s.work(6)?;
                i += step_len;
            }
        }
        c.flush_work()
    }

    fn adopt(&mut self, sys: &mut TargetSystem, survivor: DomainId) -> Result<(), OsError> {
        if sys.current_domain(self.pid)? != survivor {
            if sys.base().process(self.pid)?.page_tables[survivor.index()].is_none() {
                return Err(OsError::DomainDead(survivor.other()));
            }
            sys.base_mut().process_mut(self.pid)?.current = survivor;
        }
        self.migrate = false;
        Ok(())
    }

    fn finish(&mut self, sys: &mut TargetSystem) -> Result<NpbOutcome, OsError> {
        let (sorted, n_keys) = (self.sorted, self.keys.len());
        let mut c = MemoryClient::new(sys, self.pid);
        let mut checksum = 0.0f64;
        let mut prev = 0u64;
        let mut verified = self.verified;
        {
            let mut s = c.batch()?;
            let mut buf = [0u64; 512];
            let mut i = 0u64;
            while i < n_keys {
                let n = (n_keys - i).min(512) as usize;
                s.ld_u64_slice(sorted, i, &mut buf[..n], 5)?;
                for &k in &buf[..n] {
                    if k < prev {
                        verified = false;
                    }
                    prev = k;
                    checksum += k as f64;
                }
                i += n as u64;
            }
        }
        c.flush_work()?;
        Ok(NpbOutcome { verified, checksum, procedures: self.procedures })
    }
}

fn is_params(class: Class) -> (u64, u64, u32) {
    // Mirrors npb::is::params (keys, max_key, iterations).
    match class {
        Class::Tiny => (1 << 10, 1 << 7, 2),
        Class::Small => (1 << 19, 1 << 11, 3),
        Class::Validation => (1 << 17, 1 << 11, 3),
        Class::Large => (1 << 22, 1 << 11, 2),
    }
}

/// Runs NPB IS one ranking procedure per step under the crash-recovery
/// supervisor. Same contract as [`run_kv_recovered`]: with a crash in
/// the installed plan and restart-from-checkpoint recovery, the sorted
/// output and checksum are byte-identical to the crash-free stepped
/// baseline.
///
/// # Errors
///
/// OS errors, including checkpoint-decode failures during recovery.
pub fn run_is_recovered(
    mut sys: TargetSystem,
    class: Class,
    rc: &RecoveryConfig,
) -> Result<Recovered<NpbOutcome>, OsError> {
    let (n_keys, max_key, iterations) = is_params(class);
    let pid = sys.spawn(DomainId::X86)?;
    let migrate = sys.kind().migrates();
    let (keys, sorted, hist) = {
        let mut c = MemoryClient::new(&mut sys, pid);
        let keys = c.alloc_u64(n_keys)?;
        let sorted = c.alloc_u64(n_keys)?;
        let hist = c.alloc_u64(max_key)?;
        let mut rng = DataRng::new(0x15_15);
        {
            let mut s = c.batch()?;
            let mut chunk = [0u64; 512];
            let mut i = 0u64;
            while i < n_keys {
                let n = (n_keys - i).min(512) as usize;
                for v in chunk[..n].iter_mut() {
                    *v = rng.next_u64() % max_key;
                }
                s.st_u64_slice(keys, i, &chunk[..n], 8)?;
                i += n as u64;
            }
        }
        c.flush_work()?;
        (keys, sorted, hist)
    };
    let w = SteppedIs {
        pid,
        keys,
        sorted,
        hist,
        max_key,
        migrate,
        verified: true,
        procedures: 0,
    };
    supervise(sys, w, u64::from(iterations), rc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SystemKind;
    use stramash_sim::{FaultPlan, HardwareModel};

    fn build(kind: SystemKind) -> TargetSystem {
        TargetSystem::build(kind, HardwareModel::Shared).unwrap()
    }

    fn crash_plan(domain: u8, at_tick: u64) -> FaultPlan {
        let mut p = FaultPlan::none();
        p.crash = Some((domain, at_tick));
        p
    }

    #[test]
    fn stepped_kv_without_faults_matches_itself() {
        let rc = RecoveryConfig::default();
        let a = run_kv_recovered(build(SystemKind::Stramash), KvOp::Set, 60, 64, &rc).unwrap();
        let b = run_kv_recovered(build(SystemKind::Stramash), KvOp::Set, 60, 64, &rc).unwrap();
        assert_eq!(a.result.checksum, b.result.checksum);
        assert_eq!(a.result.total, b.result.total, "stepped runs must be deterministic");
        assert_eq!(a.crashes, 0);
        assert_eq!(a.restarts, 0);
    }

    #[test]
    fn kv_crash_restart_is_byte_identical() {
        let rc = RecoveryConfig { checkpoint_every: 8, ..RecoveryConfig::default() };
        let clean = run_kv_recovered(build(SystemKind::Stramash), KvOp::Set, 60, 64, &rc).unwrap();
        let mut sys = build(SystemKind::Stramash);
        sys.install_fault_plan(crash_plan(1, 20), 0xdead_beef);
        let hurt = run_kv_recovered(sys, KvOp::Set, 60, 64, &rc).unwrap();
        assert_eq!(hurt.crashes, 1);
        assert_eq!(hurt.restarts, 1);
        assert_eq!(
            hurt.result.checksum, clean.result.checksum,
            "restart-from-checkpoint must replay to the same responses"
        );
        assert!(hurt.sys.audit().is_empty(), "auditor violations after recovery");
    }

    #[test]
    fn kv_crash_degrade_completes_on_survivor() {
        let rc = RecoveryConfig { policy: RecoveryPolicy::Degrade, ..RecoveryConfig::default() };
        let mut sys = build(SystemKind::Stramash);
        sys.install_fault_plan(crash_plan(1, 20), 0xdead_beef);
        let out = run_kv_recovered(sys, KvOp::Set, 60, 64, &rc).unwrap();
        assert_eq!(out.crashes, 1);
        assert_eq!(out.restarts, 0);
        assert_eq!(out.degraded, Some(DomainId::ARM));
        assert_eq!(out.result.requests, 60);
    }

    #[test]
    fn is_crash_restart_is_byte_identical() {
        let rc = RecoveryConfig {
            checkpoint_every: 1,
            watchdog_threshold: 1,
            ..RecoveryConfig::default()
        };
        let clean = run_is_recovered(build(SystemKind::Stramash), Class::Tiny, &rc).unwrap();
        assert!(clean.result.verified);
        let mut sys = build(SystemKind::Stramash);
        sys.install_fault_plan(crash_plan(1, 1), 0xfeed);
        let hurt = run_is_recovered(sys, Class::Tiny, &rc).unwrap();
        assert_eq!(hurt.crashes, 1);
        assert!(hurt.restarts >= 1);
        assert!(hurt.result.verified, "recovered IS must still sort");
        assert_eq!(hurt.result.checksum, clean.result.checksum);
        assert_eq!(hurt.result.procedures, clean.result.procedures);
    }
}
