//! Microbenchmarks of §9.2.4 – §9.2.6.
//!
//! * [`memory_access`] — the Figure 11 memory-bound microbenchmark:
//!   10 MB allocated on one kernel, sequentially accessed from either
//!   side, cold and warm.
//! * [`granularity`] — the Figure 12 software-vs-hardware consistency
//!   experiment: a producer/consumer page ping at 1..64-cacheline
//!   granularity.
//! * [`futex_pingpong`] — the Figure 13 futex experiment: the origin
//!   continuously locks while the remote continuously unlocks.

use crate::target::TargetSystem;
use stramash_kernel::addr::{VirtAddr, PAGE_SIZE};
use stramash_kernel::system::{OsError, OsSystem};
use stramash_kernel::vma::VmaProt;
use stramash_sim::{Cycles, DomainId};

/// The five Figure 11 access scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessScenario {
    /// The origin accesses its own memory (baseline).
    Vanilla,
    /// The remote kernel accesses origin-allocated memory, cold.
    RemoteAccessOrigin,
    /// Same, but the remote has accessed it before ("No Cold").
    RemoteAccessOriginNoCold,
    /// The origin accesses remote-allocated memory, cold.
    OriginAccessRemote,
    /// Same, warm.
    OriginAccessRemoteNoCold,
}

impl AccessScenario {
    /// All five scenarios in the figure's order.
    pub const ALL: [AccessScenario; 5] = [
        AccessScenario::Vanilla,
        AccessScenario::RemoteAccessOrigin,
        AccessScenario::RemoteAccessOriginNoCold,
        AccessScenario::OriginAccessRemote,
        AccessScenario::OriginAccessRemoteNoCold,
    ];

    /// The figure's label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AccessScenario::Vanilla => "Vanilla",
            AccessScenario::RemoteAccessOrigin => "RaO",
            AccessScenario::RemoteAccessOriginNoCold => "RaO-NC",
            AccessScenario::OriginAccessRemote => "OaR",
            AccessScenario::OriginAccessRemoteNoCold => "OaR-NC",
        }
    }
}

/// Result of one Figure 11 scenario.
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// Cycles of the measured sequential pass.
    pub measured: Cycles,
    /// Bytes accessed.
    pub bytes: u64,
}

/// Runs one Figure 11 scenario on `sys` with a `bytes`-sized buffer
/// (the paper uses 10 MB). Returns the measured pass cost.
///
/// # Errors
///
/// OS errors from allocation or access.
pub fn memory_access(
    sys: &mut TargetSystem,
    scenario: AccessScenario,
    bytes: u64,
) -> Result<AccessResult, OsError> {
    let pid = sys.spawn(DomainId::X86)?;
    let words = bytes / 8;
    let (alloc_domain, access_domain) = match scenario {
        AccessScenario::Vanilla => (DomainId::X86, DomainId::X86),
        AccessScenario::RemoteAccessOrigin | AccessScenario::RemoteAccessOriginNoCold => {
            (DomainId::X86, DomainId::ARM)
        }
        AccessScenario::OriginAccessRemote | AccessScenario::OriginAccessRemoteNoCold => {
            (DomainId::ARM, DomainId::X86)
        }
    };
    let warm = matches!(
        scenario,
        AccessScenario::RemoteAccessOriginNoCold | AccessScenario::OriginAccessRemoteNoCold
    );

    let buf = sys.mmap(pid, bytes, VmaProt::rw())?;
    // Populate on the allocating kernel (a thread of the process pinned
    // there), so the physical pages land in that kernel's memory.
    sys.as_thread_on(pid, alloc_domain, |s| {
        for w in 0..words {
            s.store_u64(pid, buf.offset(w * 8), w)?;
        }
        Ok(())
    })?;

    if warm {
        // The accessor touches everything once beforehand (replicating
        // under DSM / warming caches under Stramash).
        sys.as_thread_on(pid, access_domain, |s| {
            for w in 0..words {
                s.load_u64(pid, buf.offset(w * 8))?;
            }
            Ok(())
        })?;
    } else {
        // Cold caches on the accessor side.
        sys.base_mut().mem.flush_caches();
    }

    // Measured pass: sequential reads by the accessing kernel.
    let before = sys.runtime();
    sys.as_thread_on(pid, access_domain, |s| {
        for w in 0..words {
            let v = s.load_u64(pid, buf.offset(w * 8))?;
            debug_assert_eq!(v, w, "data must survive the placement dance");
        }
        Ok(())
    })?;
    Ok(AccessResult { measured: sys.runtime() - before, bytes })
}

/// Result of one Figure 12 granularity point.
#[derive(Debug, Clone, Copy)]
pub struct GranularityResult {
    /// Cache lines accessed per round.
    pub lines: u64,
    /// Average cycles per producer/consumer round.
    pub cycles_per_round: f64,
}

/// The Figure 12 experiment: for `lines` ∈ 1..=64, a writer thread on
/// the origin updates `lines` cache lines of a page and a reader thread
/// on the remote kernel consumes them, for `rounds` rounds. Under DSM
/// the whole 4 KiB page is re-replicated every round; under hardware
/// coherence only the touched lines move.
///
/// # Errors
///
/// OS errors.
pub fn granularity(
    sys: &mut TargetSystem,
    lines: u64,
    rounds: u64,
) -> Result<GranularityResult, OsError> {
    assert!((1..=64).contains(&lines), "1..=64 cache lines per page");
    let pid = sys.spawn(DomainId::X86)?;
    let page = sys.mmap(pid, PAGE_SIZE, VmaProt::rw())?;
    // Fault the page in on the origin, and let the remote see it once.
    sys.store_u64(pid, page, 0)?;
    sys.as_thread_on(pid, DomainId::ARM, |s| s.load_u64(pid, page).map(|_| ()))?;

    let before = sys.runtime();
    for round in 1..=rounds {
        // Producer writes the first `lines` lines.
        sys.as_thread_on(pid, DomainId::X86, |s| {
            for l in 0..lines {
                s.store_u64(pid, page.offset(l * 64), round * 1000 + l)?;
            }
            Ok(())
        })?;
        // Consumer reads them back on the other kernel.
        sys.as_thread_on(pid, DomainId::ARM, |s| {
            for l in 0..lines {
                let v = s.load_u64(pid, page.offset(l * 64))?;
                debug_assert_eq!(v, round * 1000 + l, "consumer must see fresh data");
            }
            Ok(())
        })?;
    }
    let total = (sys.runtime() - before).raw() as f64;
    Ok(GranularityResult { lines, cycles_per_round: total / rounds as f64 })
}

/// Result of the Figure 13 futex experiment.
#[derive(Debug, Clone, Copy)]
pub struct FutexResult {
    /// Lock/unlock loop count.
    pub loops: u64,
    /// Total cycles across both domains.
    pub total: Cycles,
}

/// The Figure 13 experiment: "The origin kernel continuously locks the
/// Futex, while the remote kernel continuously unlocks the same Futex,
/// performing a simple addition in each loop."
///
/// # Errors
///
/// OS errors.
pub fn futex_pingpong(
    sys: &mut TargetSystem,
    loops: u64,
) -> Result<FutexResult, OsError> {
    let pid = sys.spawn(DomainId::X86)?;
    let word = sys.mmap(pid, PAGE_SIZE, VmaProt::rw())?;
    let counter = word.offset(512);
    sys.store_u64(pid, word, 0)?;
    // Make sure both sides have the page mapped before measuring.
    sys.as_thread_on(pid, DomainId::ARM, |s| s.load_u64(pid, word).map(|_| ()))?;

    let before = sys.runtime();
    for _ in 0..loops {
        sys.futex_lock(pid, DomainId::X86, word)?;
        // The "simple addition" — on the shared counter.
        let v = sys.load_u64(pid, counter)?;
        sys.store_u64(pid, counter, v + 1)?;
        sys.base_mut().retire(DomainId::X86, 8);
        sys.futex_unlock(pid, DomainId::ARM, word)?;
        sys.base_mut().retire(DomainId::ARM, 8);
    }
    let total = sys.runtime() - before;
    let counted = sys.load_u64(pid, counter)?;
    debug_assert_eq!(counted, loops, "every loop increments once");
    Ok(FutexResult { loops, total })
}

/// Convenience: the futex word VA used by [`futex_pingpong`] (for tests
/// that inspect state).
#[must_use]
pub fn futex_word_va() -> VirtAddr {
    VirtAddr::new(stramash_kernel::process::MMAP_BASE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SystemKind;
    use stramash_sim::HardwareModel;

    const TEST_BYTES: u64 = 256 << 10; // scaled-down 10 MB

    #[test]
    fn vanilla_is_fastest_scenario() {
        let mut cold = Vec::new();
        for sc in [AccessScenario::Vanilla, AccessScenario::RemoteAccessOrigin] {
            let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
            let r = memory_access(&mut sys, sc, TEST_BYTES).unwrap();
            cold.push(r.measured.raw());
        }
        assert!(cold[0] < cold[1], "local access must beat remote: {cold:?}");
    }

    #[test]
    fn popcorn_warm_access_is_nearly_local() {
        // §9.2.4: after replication, Popcorn's warm accesses are local
        // and close to vanilla.
        let mut sys = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let vanilla = memory_access(&mut sys, AccessScenario::Vanilla, TEST_BYTES).unwrap();
        let mut sys = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let warm =
            memory_access(&mut sys, AccessScenario::RemoteAccessOriginNoCold, TEST_BYTES).unwrap();
        let ratio = warm.measured.raw() as f64 / vanilla.measured.raw() as f64;
        assert!(ratio < 2.0, "warm DSM access should approach vanilla, got {ratio:.2}×");
    }

    #[test]
    fn stramash_beats_popcorn_on_cold_remote_access() {
        // §9.2.4: Stramash outperforms SHM on the cold remote pass (no
        // page replication machinery).
        let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let p = memory_access(&mut pop, AccessScenario::RemoteAccessOrigin, TEST_BYTES).unwrap();
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let s = memory_access(&mut stra, AccessScenario::RemoteAccessOrigin, TEST_BYTES).unwrap();
        assert!(
            p.measured > s.measured,
            "popcorn {} vs stramash {}",
            p.measured,
            s.measured
        );
    }

    #[test]
    fn granularity_dsm_overhead_shrinks_with_lines() {
        let ratio_at = |lines: u64| {
            let mut pop =
                TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
            let p = granularity(&mut pop, lines, 10).unwrap();
            let mut stra =
                TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
            let s = granularity(&mut stra, lines, 10).unwrap();
            p.cycles_per_round / s.cycles_per_round
        };
        let one = ratio_at(1);
        let full = ratio_at(64);
        assert!(one > 10.0, "DSM must be far worse at 1 line, got {one:.1}×");
        assert!(full < one / 2.0, "gap must narrow at full-page granularity: {full:.1}×");
        assert!(full > 1.0, "hardware coherence still wins at 64 lines");
    }

    #[test]
    fn futex_optimization_beats_message_protocol() {
        // Figure 13: the fused futex (one IPI per wake) vs the regular
        // origin-managed protocol (messages per op).
        let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let p = futex_pingpong(&mut pop, 50).unwrap();
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let s = futex_pingpong(&mut stra, 50).unwrap();
        assert!(
            p.total.raw() > 2 * s.total.raw(),
            "popcorn futex {} vs stramash {}",
            p.total,
            s.total
        );
    }
}
