//! The network-serving application of §9.2.8 (Figure 14).
//!
//! A functional in-simulator key-value store standing in for the
//! modified Redis server: the client lives on the x86 kernel, the server
//! thread is migrated to the Arm kernel, and every request crosses the
//! messaging layer (TCP vs SHM) while the server's data-structure
//! accesses run through the simulated memory system. The store supports
//! the eight redis-benchmark operations the figure reports.

use crate::target::TargetSystem;
use stramash_kernel::addr::VirtAddr;
use stramash_kernel::msg::{Message, MsgType};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{OsError, OsSystem};
use stramash_kernel::vma::VmaProt;
use stramash_sim::{Cycles, DomainId};
use std::fmt;

/// The redis-benchmark operations of Figure 14, in the figure's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// String read.
    Get,
    /// String write.
    Set,
    /// Push at the list head.
    Lpush,
    /// Push at the list tail.
    Rpush,
    /// Pop from the head.
    Lpop,
    /// Pop from the tail.
    Rpop,
    /// Set-insert with dedup.
    Sadd,
    /// Multi-key string write (5 keys per request).
    Mset,
}

impl KvOp {
    /// All eight, in figure order.
    pub const ALL: [KvOp; 8] = [
        KvOp::Get,
        KvOp::Set,
        KvOp::Lpush,
        KvOp::Rpush,
        KvOp::Lpop,
        KvOp::Rpop,
        KvOp::Sadd,
        KvOp::Mset,
    ];
}

impl fmt::Display for KvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KvOp::Get => "get",
            KvOp::Set => "set",
            KvOp::Lpush => "lpush",
            KvOp::Rpush => "rpush",
            KvOp::Lpop => "lpop",
            KvOp::Rpop => "rpop",
            KvOp::Sadd => "sadd",
            KvOp::Mset => "mset",
        };
        f.write_str(s)
    }
}

const BUCKETS: u64 = 256;
pub(crate) const ENTRY_HEADER: u64 = 24; // next, keyhash, len

/// The server's in-simulator data structures.
#[derive(Debug)]
pub struct KvServer {
    /// Hash buckets for strings (u64 VA pointers, 0 = empty).
    buckets: VirtAddr,
    /// Hash buckets for the set type.
    set_buckets: VirtAddr,
    /// Head pointer word of the global list.
    list_head: VirtAddr,
    /// Tail pointer word.
    list_tail: VirtAddr,
    heap_base: VirtAddr,
    heap_len: u64,
    heap_cursor: u64,
}

impl KvServer {
    /// Allocates the store's structures in the process's address space
    /// (they will live in whichever kernel's memory faults them in).
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn setup(
        sys: &mut TargetSystem,
        pid: Pid,
        heap_len: u64,
    ) -> Result<Self, OsError> {
        let buckets = sys.mmap(pid, BUCKETS * 8, VmaProt::rw())?;
        let set_buckets = sys.mmap(pid, BUCKETS * 8, VmaProt::rw())?;
        let words = sys.mmap(pid, 4096, VmaProt::rw())?;
        let heap_base = sys.mmap(pid, heap_len, VmaProt::rw())?;
        // Zero the bucket arrays and list words (first touch).
        for b in 0..BUCKETS {
            sys.store_u64(pid, buckets.offset(b * 8), 0)?;
            sys.store_u64(pid, set_buckets.offset(b * 8), 0)?;
        }
        sys.store_u64(pid, words, 0)?;
        sys.store_u64(pid, words.offset(8), 0)?;
        Ok(KvServer {
            buckets,
            set_buckets,
            list_head: words,
            list_tail: words.offset(8),
            heap_base,
            heap_len,
            heap_cursor: 0,
        })
    }

    fn alloc(&mut self, size: u64) -> VirtAddr {
        let aligned = size.div_ceil(64) * 64;
        assert!(
            self.heap_cursor + aligned <= self.heap_len,
            "KV heap exhausted — enlarge heap_len"
        );
        let va = self.heap_base.offset(self.heap_cursor);
        self.heap_cursor += aligned;
        va
    }

    /// Executes one operation server-side, returning the response
    /// payload length.
    ///
    /// # Errors
    ///
    /// OS errors from the store's memory traffic.
    pub fn process(
        &mut self,
        sys: &mut TargetSystem,
        pid: Pid,
        op: KvOp,
        key_hash: u64,
        payload: &[u8],
    ) -> Result<u32, OsError> {
        match op {
            KvOp::Set => {
                self.insert_string(sys, pid, key_hash, payload)?;
                Ok(8)
            }
            KvOp::Mset => {
                for k in 0..5 {
                    self.insert_string(sys, pid, key_hash.wrapping_add(k * 7919), payload)?;
                }
                Ok(8)
            }
            KvOp::Get => {
                let found = self.lookup_string(sys, pid, key_hash)?;
                Ok(found.map_or(8, |len| len as u32))
            }
            KvOp::Lpush | KvOp::Rpush => {
                let node = self.alloc(ENTRY_HEADER + payload.len() as u64);
                sys.write_mem(pid, node.offset(ENTRY_HEADER), payload)?;
                sys.store_u64(pid, node.offset(16), payload.len() as u64)?;
                if op == KvOp::Lpush {
                    let head = sys.load_u64(pid, self.list_head)?;
                    sys.store_u64(pid, node, head)?;
                    sys.store_u64(pid, node.offset(8), 0)?;
                    if head != 0 {
                        sys.store_u64(pid, VirtAddr::new(head).offset(8), node.raw())?;
                    } else {
                        sys.store_u64(pid, self.list_tail, node.raw())?;
                    }
                    sys.store_u64(pid, self.list_head, node.raw())?;
                } else {
                    let tail = sys.load_u64(pid, self.list_tail)?;
                    sys.store_u64(pid, node, 0)?;
                    sys.store_u64(pid, node.offset(8), tail)?;
                    if tail != 0 {
                        sys.store_u64(pid, VirtAddr::new(tail), node.raw())?;
                    } else {
                        sys.store_u64(pid, self.list_head, node.raw())?;
                    }
                    sys.store_u64(pid, self.list_tail, node.raw())?;
                }
                { let d = sys.current_domain(pid)?; sys.base_mut().retire(d, 40); }
                Ok(8)
            }
            KvOp::Lpop | KvOp::Rpop => {
                let node = if op == KvOp::Lpop {
                    sys.load_u64(pid, self.list_head)?
                } else {
                    sys.load_u64(pid, self.list_tail)?
                };
                if node == 0 {
                    return Ok(8); // empty list
                }
                let node_va = VirtAddr::new(node);
                let next = sys.load_u64(pid, node_va)?;
                let prev = sys.load_u64(pid, node_va.offset(8))?;
                if op == KvOp::Lpop {
                    sys.store_u64(pid, self.list_head, next)?;
                    if next != 0 {
                        sys.store_u64(pid, VirtAddr::new(next).offset(8), 0)?;
                    } else {
                        sys.store_u64(pid, self.list_tail, 0)?;
                    }
                } else {
                    sys.store_u64(pid, self.list_tail, prev)?;
                    if prev != 0 {
                        sys.store_u64(pid, VirtAddr::new(prev), 0)?;
                    } else {
                        sys.store_u64(pid, self.list_head, 0)?;
                    }
                }
                let len = sys.load_u64(pid, node_va.offset(16))?;
                let mut out = vec![0u8; len as usize];
                sys.read_mem(pid, node_va.offset(ENTRY_HEADER), &mut out)?;
                { let d = sys.current_domain(pid)?; sys.base_mut().retire(d, 40); }
                Ok(len as u32)
            }
            KvOp::Sadd => {
                // Dedup insert keyed by hash.
                let bucket = self.set_buckets.offset((key_hash % BUCKETS) * 8);
                let mut cur = sys.load_u64(pid, bucket)?;
                while cur != 0 {
                    let h = sys.load_u64(pid, VirtAddr::new(cur).offset(8))?;
                    if h == key_hash {
                        return Ok(8); // already a member
                    }
                    cur = sys.load_u64(pid, VirtAddr::new(cur))?;
                }
                let entry = self.alloc(ENTRY_HEADER + payload.len() as u64);
                sys.write_mem(pid, entry.offset(ENTRY_HEADER), payload)?;
                sys.store_u64(pid, entry.offset(8), key_hash)?;
                sys.store_u64(pid, entry.offset(16), payload.len() as u64)?;
                let head = sys.load_u64(pid, bucket)?;
                sys.store_u64(pid, entry, head)?;
                sys.store_u64(pid, bucket, entry.raw())?;
                { let d = sys.current_domain(pid)?; sys.base_mut().retire(d, 60); }
                Ok(8)
            }
        }
    }

    fn insert_string(
        &mut self,
        sys: &mut TargetSystem,
        pid: Pid,
        key_hash: u64,
        payload: &[u8],
    ) -> Result<(), OsError> {
        let bucket = self.buckets.offset((key_hash % BUCKETS) * 8);
        // Update in place when the key exists.
        let mut cur = sys.load_u64(pid, bucket)?;
        while cur != 0 {
            let h = sys.load_u64(pid, VirtAddr::new(cur).offset(8))?;
            if h == key_hash {
                sys.write_mem(pid, VirtAddr::new(cur).offset(ENTRY_HEADER), payload)?;
                return Ok(());
            }
            cur = sys.load_u64(pid, VirtAddr::new(cur))?;
        }
        let entry = self.alloc(ENTRY_HEADER + payload.len() as u64);
        sys.write_mem(pid, entry.offset(ENTRY_HEADER), payload)?;
        sys.store_u64(pid, entry.offset(8), key_hash)?;
        sys.store_u64(pid, entry.offset(16), payload.len() as u64)?;
        let head = sys.load_u64(pid, bucket)?;
        sys.store_u64(pid, entry, head)?;
        sys.store_u64(pid, bucket, entry.raw())?;
        { let d = sys.current_domain(pid)?; sys.base_mut().retire(d, 60); }
        Ok(())
    }

    /// Serializes the server's pointer state into a checkpoint section.
    /// The stored data itself lives in simulated memory and is covered
    /// by the system checkpoint; only the VA roots are written here.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4b56_5356); // "KVSV"
        e.u64(self.buckets.raw());
        e.u64(self.set_buckets.raw());
        e.u64(self.list_head.raw());
        e.u64(self.list_tail.raw());
        e.u64(self.heap_base.raw());
        e.u64(self.heap_len);
        e.u64(self.heap_cursor);
    }

    /// Restores a server written by [`KvServer::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<Self, stramash_sim::checkpoint::CheckpointError> {
        d.tag(0x4b56_5356)?;
        Ok(KvServer {
            buckets: VirtAddr::new(d.u64()?),
            set_buckets: VirtAddr::new(d.u64()?),
            list_head: VirtAddr::new(d.u64()?),
            list_tail: VirtAddr::new(d.u64()?),
            heap_base: VirtAddr::new(d.u64()?),
            heap_len: d.u64()?,
            heap_cursor: d.u64()?,
        })
    }

    /// String lookup by key hash, returning the payload length if found.
    ///
    /// # Errors
    ///
    /// OS errors.
    pub fn lookup_string(
        &self,
        sys: &mut TargetSystem,
        pid: Pid,
        key_hash: u64,
    ) -> Result<Option<u64>, OsError> {
        Ok(self.fetch_string(sys, pid, key_hash)?.map(|v| v.len() as u64))
    }

    /// String lookup returning the stored payload bytes (the response
    /// body a GET would ship back).
    ///
    /// # Errors
    ///
    /// OS errors.
    pub fn fetch_string(
        &self,
        sys: &mut TargetSystem,
        pid: Pid,
        key_hash: u64,
    ) -> Result<Option<Vec<u8>>, OsError> {
        let bucket = self.buckets.offset((key_hash % BUCKETS) * 8);
        let mut cur = sys.load_u64(pid, bucket)?;
        while cur != 0 {
            let h = sys.load_u64(pid, VirtAddr::new(cur).offset(8))?;
            if h == key_hash {
                let len = sys.load_u64(pid, VirtAddr::new(cur).offset(16))?;
                let mut buf = vec![0u8; len as usize];
                sys.read_mem(pid, VirtAddr::new(cur).offset(ENTRY_HEADER), &mut buf)?;
                return Ok(Some(buf));
            }
            cur = sys.load_u64(pid, VirtAddr::new(cur))?;
        }
        Ok(None)
    }
}

/// A hash-partitioned store: one [`KvServer`] shard per worker process,
/// each living in its owner's address space (and therefore in whichever
/// kernel's memory that worker faulted it into). Requests route by
/// `key_hash % shards`, so a key's shard — and the ISA domain serving
/// it — is a pure function of the key.
#[derive(Debug)]
pub struct ShardedKv {
    shards: Vec<KvServer>,
}

impl ShardedKv {
    /// Builds one shard per worker pid, each with `heap_per_shard`
    /// bytes of value heap in that worker's address space.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn setup(
        sys: &mut TargetSystem,
        workers: &[Pid],
        heap_per_shard: u64,
    ) -> Result<Self, OsError> {
        let mut shards = Vec::with_capacity(workers.len());
        for &pid in workers {
            shards.push(KvServer::setup(sys, pid, heap_per_shard)?);
        }
        Ok(ShardedKv { shards })
    }

    /// Number of shards (== workers).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `key_hash`.
    #[must_use]
    pub fn shard_of(&self, key_hash: u64) -> usize {
        (key_hash % self.shards.len() as u64) as usize
    }

    /// Executes one operation on the owning shard, *as* its worker
    /// process, returning `(shard, response payload length)`.
    ///
    /// # Errors
    ///
    /// OS errors from the shard's memory traffic.
    pub fn process(
        &mut self,
        sys: &mut TargetSystem,
        workers: &[Pid],
        op: KvOp,
        key_hash: u64,
        payload: &[u8],
    ) -> Result<(usize, u32), OsError> {
        let shard = self.shard_of(key_hash);
        let len = self.shards[shard].process(sys, workers[shard], op, key_hash, payload)?;
        Ok((shard, len))
    }

    /// Read access to one shard (inspection and tests).
    #[must_use]
    pub fn shard(&self, idx: usize) -> &KvServer {
        &self.shards[idx]
    }
}

/// Result of one Figure 14 run.
#[derive(Debug, Clone, Copy)]
pub struct KvRunResult {
    /// The operation exercised.
    pub op: KvOp,
    /// Requests served.
    pub requests: u64,
    /// Total cycles across both domains.
    pub total: Cycles,
    /// Average cycles per request.
    pub per_request: f64,
    /// FNV-1a fingerprint of every response length and every stored
    /// string payload — the *functional* result of the run. Fault
    /// injection may change `total` but must never change this.
    pub checksum: u64,
}

pub(crate) fn fnv(acc: u64, byte: u8) -> u64 {
    (acc ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3)
}

/// Runs the Figure 14 experiment for one operation: `requests` requests
/// with `payload` bytes each (the paper uses 10 K requests of 1024 B).
///
/// # Errors
///
/// OS errors.
pub fn run_kv(
    sys: &mut TargetSystem,
    op: KvOp,
    requests: u64,
    payload_len: u32,
) -> Result<KvRunResult, OsError> {
    let pid = sys.spawn(DomainId::X86)?;
    // Heap sized for the worst case (mset: 5 entries per request).
    let heap = (requests * 6 + 1024) * (ENTRY_HEADER + u64::from(payload_len) + 64);
    let mut server = KvServer::setup(sys, pid, heap)?;
    let payload = vec![0xabu8; payload_len as usize];

    // The server migrates to the remote kernel "during the processing of
    // the time_event" (§9.2.8).
    if sys.kind().migrates() {
        sys.migrate(pid, DomainId::ARM)?;
    }

    // Pre-populate for read-side operations.
    match op {
        KvOp::Get => {
            for r in 0..requests {
                server.insert_string(sys, pid, key_of(r), &payload)?;
            }
        }
        KvOp::Lpop | KvOp::Rpop => {
            for _ in 0..requests {
                server.process(sys, pid, KvOp::Lpush, 0, &payload)?;
            }
        }
        _ => {}
    }

    let server_domain = sys.current_domain(pid)?;
    let client_domain = DomainId::X86;
    let before = sys.runtime();
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for r in 0..requests {
        // Client → server request over the messaging layer.
        let req = Message { ty: MsgType::KvRequest, payload: payload_len };
        let (send_c, recv_c) = {
            let base = sys.base_mut();
            let send_c = {
                let (msg, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
                msg.send(mem, ipi, client_domain, req)
            };
            let recv_c = {
                let (msg, mem) = (&mut base.msg, &mut base.mem);
                msg.receive(mem, server_domain, req)
            };
            base.charge(client_domain, send_c);
            base.charge(server_domain, recv_c);
            (send_c, recv_c)
        };
        let _ = (send_c, recv_c);
        // Server processes the operation.
        let resp_len = server.process(sys, pid, op, key_of(r), &payload)?;
        for b in resp_len.to_le_bytes() {
            checksum = fnv(checksum, b);
        }
        // Server → client response.
        let resp = Message { ty: MsgType::KvResponse, payload: resp_len };
        let base = sys.base_mut();
        let send_c = {
            let (msg, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
            msg.send(mem, ipi, server_domain, resp)
        };
        let recv_c = {
            let (msg, mem) = (&mut base.msg, &mut base.mem);
            msg.receive(mem, client_domain, resp)
        };
        base.charge(server_domain, send_c);
        base.charge(client_domain, recv_c);
    }
    let total = sys.runtime() - before;
    // Functional sweep (untimed as far as the reported total goes):
    // fold every stored string payload into the fingerprint so silent
    // data corruption — not just wrong response lengths — is caught.
    for r in 0..requests {
        if let Some(stored) = server.fetch_string(sys, pid, key_of(r))? {
            for b in stored {
                checksum = fnv(checksum, b);
            }
        }
    }
    Ok(KvRunResult {
        op,
        requests,
        total,
        per_request: total.raw() as f64 / requests as f64,
        checksum,
    })
}

pub(crate) fn key_of(r: u64) -> u64 {
    r.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SystemKind;
    use stramash_sim::HardwareModel;

    fn local_setup() -> (TargetSystem, Pid, KvServer) {
        let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let server = KvServer::setup(&mut sys, pid, 1 << 20).unwrap();
        (sys, pid, server)
    }

    #[test]
    fn set_then_get() {
        let (mut sys, pid, mut server) = local_setup();
        server.process(&mut sys, pid, KvOp::Set, 42, b"hello-kv").unwrap();
        let len = server.lookup_string(&mut sys, pid, 42).unwrap();
        assert_eq!(len, Some(8));
        assert_eq!(server.lookup_string(&mut sys, pid, 43).unwrap(), None);
        // Overwrite keeps a single entry.
        server.process(&mut sys, pid, KvOp::Set, 42, b"world-kv").unwrap();
        assert_eq!(server.lookup_string(&mut sys, pid, 42).unwrap(), Some(8));
    }

    #[test]
    fn list_push_pop_fifo_lifo() {
        let (mut sys, pid, mut server) = local_setup();
        server.process(&mut sys, pid, KvOp::Rpush, 0, b"aaaa").unwrap();
        server.process(&mut sys, pid, KvOp::Rpush, 0, b"bbbb").unwrap();
        server.process(&mut sys, pid, KvOp::Lpush, 0, b"cccc").unwrap();
        // List is c, a, b.
        assert_eq!(server.process(&mut sys, pid, KvOp::Lpop, 0, &[]).unwrap(), 4);
        assert_eq!(server.process(&mut sys, pid, KvOp::Rpop, 0, &[]).unwrap(), 4);
        assert_eq!(server.process(&mut sys, pid, KvOp::Lpop, 0, &[]).unwrap(), 4);
        // Now empty.
        assert_eq!(server.process(&mut sys, pid, KvOp::Lpop, 0, &[]).unwrap(), 8);
    }

    #[test]
    fn sadd_dedups() {
        let (mut sys, pid, mut server) = local_setup();
        server.process(&mut sys, pid, KvOp::Sadd, 7, b"member").unwrap();
        let cursor_after_first = server.heap_cursor;
        server.process(&mut sys, pid, KvOp::Sadd, 7, b"member").unwrap();
        assert_eq!(server.heap_cursor, cursor_after_first, "duplicate sadd must not allocate");
        server.process(&mut sys, pid, KvOp::Sadd, 8, b"member").unwrap();
        assert!(server.heap_cursor > cursor_after_first);
    }

    #[test]
    fn payload_integrity_across_migration() {
        // Values written by the server on the Arm kernel must read back
        // byte-for-byte after migrating home — on every design.
        for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
            let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
            let pid = sys.spawn(DomainId::X86).unwrap();
            let mut server = KvServer::setup(&mut sys, pid, 1 << 20).unwrap();
            sys.migrate(pid, DomainId::ARM).unwrap();
            let payload: Vec<u8> = (0..1024u32).map(|i| (i * 7) as u8).collect();
            server.process(&mut sys, pid, KvOp::Set, 99, &payload).unwrap();
            sys.migrate(pid, DomainId::X86).unwrap();
            let got = server.fetch_string(&mut sys, pid, 99).unwrap().unwrap();
            assert_eq!(got, payload, "{kind:?}: payload corrupted across kernels");
        }
    }

    #[test]
    fn kv_experiment_shm_beats_tcp() {
        // The Figure 14 headline: SHM messaging is far faster than TCP.
        let mut tcp = TargetSystem::build(SystemKind::PopcornTcp, HardwareModel::Shared).unwrap();
        let t = run_kv(&mut tcp, KvOp::Get, 50, 1024).unwrap();
        let mut shm = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let s = run_kv(&mut shm, KvOp::Get, 50, 1024).unwrap();
        let speedup = t.per_request / s.per_request;
        assert!(speedup > 2.0, "SHM speedup over TCP was only {speedup:.2}×");
    }

    #[test]
    fn kv_experiment_stramash_at_least_matches_shm() {
        let mut shm = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let s = run_kv(&mut shm, KvOp::Set, 50, 1024).unwrap();
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let f = run_kv(&mut stra, KvOp::Set, 50, 1024).unwrap();
        assert!(
            f.per_request <= s.per_request,
            "stramash {} vs popcorn-shm {}",
            f.per_request,
            s.per_request
        );
    }

    #[test]
    fn sharded_store_routes_by_key_and_isolates_shards() {
        let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let pids: Vec<Pid> =
            (0..4).map(|_| sys.spawn(DomainId::X86).unwrap()).collect();
        sys.migrate(pids[1], DomainId::ARM).unwrap();
        sys.migrate(pids[3], DomainId::ARM).unwrap();
        let mut store = ShardedKv::setup(&mut sys, &pids, 1 << 18).unwrap();
        assert_eq!(store.shards(), 4);
        // Writes land on the shard the key hashes to; reads through the
        // sharded front door find them, direct probes of other shards
        // don't.
        for key in [3u64, 10, 17, 1000] {
            let (shard, _) = store.process(&mut sys, &pids, KvOp::Set, key, b"v").unwrap();
            assert_eq!(shard, store.shard_of(key));
            let (shard2, len) = store.process(&mut sys, &pids, KvOp::Get, key, &[]).unwrap();
            assert_eq!((shard2, len), (shard, 1));
            for (other, &pid) in pids.iter().enumerate() {
                if other != shard {
                    let miss = store.shard(other).lookup_string(&mut sys, pid, key).unwrap();
                    assert_eq!(miss, None, "key {key} leaked into shard {other}");
                }
            }
        }
    }

    #[test]
    fn ops_display_lowercase() {
        assert_eq!(KvOp::Lpush.to_string(), "lpush");
        assert_eq!(KvOp::Mset.to_string(), "mset");
        assert_eq!(KvOp::ALL.len(), 8);
    }
}
