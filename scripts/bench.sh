#!/usr/bin/env sh
# Simulator performance baseline: runs the host-side microbenchmark
# harness (crit_simulator, including the old-path vs fast-path
# comparison) and the end-to-end parallel NPB sweep, then merges both
# result fragments into one machine-readable BENCH_simulator.json at
# the repo root. Non-gating: CI uploads the JSON as an artifact so the
# repo accumulates a perf trajectory, but a slow run never fails the
# pipeline.
#
# Usage: scripts/bench.sh [output.json]
# Env:   STRAMASH_SWEEP_WORKERS — figure-sweep worker pool override;
#        defaults to the host's available_parallelism (recorded in the
#        JSON's "workers" field alongside the wall-clocks).
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

OUT="${1:-BENCH_simulator.json}"
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

MICRO_JSON="$TMPDIR_BENCH/micro.json"
SWEEP_JSON="$TMPDIR_BENCH/sweep.json"
KVSERVE_JSON="$TMPDIR_BENCH/kvserve.json"

# Both harnesses run with the explicit-SIMD plan replay enabled — the
# fastest host configuration, and the one whose numbers the committed
# baseline records. Simulated results are identical without it.
echo "==> cargo bench -p stramash-bench --features criterion,simd --bench crit_simulator"
STRAMASH_BENCH_JSON="$MICRO_JSON" \
    cargo bench -p stramash-bench --features criterion,simd --bench crit_simulator

echo "==> cargo bench -p stramash-bench --features simd --bench sweep_parallel"
STRAMASH_BENCH_JSON="$SWEEP_JSON" \
    cargo bench -p stramash-bench --features simd --bench sweep_parallel

echo "==> cargo bench -p stramash-bench --features simd --bench kv_serving"
STRAMASH_BENCH_JSON="$KVSERVE_JSON" \
    cargo bench -p stramash-bench --features simd --bench kv_serving

# Merge the three fragments textually (no jq dependency).
{
    printf '{\n"micro":\n'
    cat "$MICRO_JSON"
    printf ',\n"npb_sweep":\n'
    cat "$SWEEP_JSON"
    printf ',\n"kvserve":\n'
    cat "$KVSERVE_JSON"
    printf '}\n'
} >"$OUT"

echo "==> wrote $OUT"
cat "$OUT"
