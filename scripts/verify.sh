#!/usr/bin/env sh
# Tier-1 verification gate, fully offline: release build, the whole
# test suite, and warning-free clippy. CI runs exactly this script, so
# a green local run means a green pipeline.
set -eu

cd "$(dirname "$0")/.."

# Never touch the network: every dependency is in-workspace.
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify: OK"
