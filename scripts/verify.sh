#!/usr/bin/env sh
# Tier-1 verification gate, fully offline: release build, the whole
# test suite, and warning-free clippy. CI runs exactly this script, so
# a green local run means a green pipeline.
set -eu

cd "$(dirname "$0")/.."

# Never touch the network: every dependency is in-workspace.
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# chaos-smoke: a fixed-seed escalating fault sweep across all four
# system designs, with invariant audits after every recovery. Exits
# non-zero on any auditor violation or functional-fingerprint drift.
# The second run plants a known recovery bug and must find + shrink it,
# proving the detector itself works.
echo "==> chaos-smoke: seeded sweep (must stay green)"
./target/release/stramash-cli chaos --seed 0x5eed --stages 4

echo "==> chaos-smoke: injected regression (must be found and shrunk)"
./target/release/stramash-cli chaos --seed 0x5eed --stages 4 --inject-regression

echo "==> verify: OK"
