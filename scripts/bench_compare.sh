#!/usr/bin/env sh
# Compares a freshly produced bench JSON (scripts/bench.sh output)
# against the committed BENCH_simulator.json baseline and emits GitHub
# `::warning` annotations for metrics that regressed beyond a relative
# tolerance. Host wall-clock on shared CI runners is noisy, so the diff
# is advisory — CI consumes it with continue-on-error — but failure
# modes are distinguishable instead of silently exiting 0:
#
#   0  comparison ran (regressions, if any, were emitted as warnings)
#   3  a baseline or fresh-results file is missing
#   4  an input file is not valid JSON
#   5  an end-to-end or parallel *speedup* metric regressed beyond
#      tolerance (still advisory, but distinguishable so CI can badge
#      "the optimisation itself eroded" separately from generic noise)
#
# Fields present in only one of baseline/fresh (harness growth vs an
# old baseline) are noted and skipped, never an error. Parallel-speedup
# checks are skipped when either side ran on a single core (the
# `host_cores` JSON field; absent means 1).
#
# Usage: scripts/bench_compare.sh [fresh.json] [baseline.json]
# Env:   STRAMASH_BENCH_TOLERANCE — relative slack, default 0.25 (25 %).
set -u

cd "$(dirname "$0")/.."
FRESH="${1:-BENCH_fresh.json}"
BASE="${2:-BENCH_simulator.json}"
TOLERANCE="${STRAMASH_BENCH_TOLERANCE:-0.25}"

missing=""
[ -f "$FRESH" ] || missing="$FRESH"
[ -f "$BASE" ] || missing="${missing:+$missing }$BASE"
if [ -n "$missing" ]; then
    echo "::warning::bench_compare: missing input file(s): $missing — comparison skipped"
    exit 3
fi

python3 - "$FRESH" "$BASE" "$TOLERANCE" <<'EOF'
import json
import sys

try:
    fresh = json.load(open(sys.argv[1]))
    base = json.load(open(sys.argv[2]))
except json.JSONDecodeError as e:
    print(f"::warning::bench_compare: malformed JSON input: {e} — comparison skipped")
    sys.exit(4)
if not isinstance(fresh, dict) or not isinstance(base, dict):
    print("::warning::bench_compare: input is not a JSON object — comparison skipped")
    sys.exit(4)
tol = float(sys.argv[3])


def flatten(d, prefix=""):
    out = {}
    for k, v in d.items():
        key = prefix + k
        if isinstance(v, dict):
            out.update(flatten(v, key + "."))
        elif isinstance(v, (int, float)):
            out[key] = float(v)
    return out


f, b = flatten(fresh), flatten(base)
# Most metrics are times (lower is better); these are the exceptions.
HIGHER_IS_BETTER = ("speedup", "accesses_per_sec", "throughput")
# Machine shape / run identity, not performance.
SKIP = ("workers", "configs", "host_cores", "wide_replay", "requests", "fingerprint")
# Speedup metrics that track the headline optimisations: a drop here
# means the optimisation itself eroded, not just runner noise, so it
# gets its own advisory exit code (5).
HEADLINE = ("endtoend", "parallel", "kvserve")

# Parallel speedups only mean anything on a multi-core host. Either
# side reporting (or, for old baselines predating the field, implying)
# a single core makes a ~1.0x reading correct behaviour, not a
# regression — skip those comparisons rather than flag them.
def cores(d):
    return int(d.get("host_cores", 1))

multicore = cores(fresh) >= 2 and cores(base) >= 2

warned = 0
headline_regressed = 0
one_sided = sorted(set(b) ^ set(f))
for key in one_sided:
    # Fields present on only one side (new metrics vs an old baseline,
    # or vice versa) are expected across harness growth: note them,
    # but they are neither a malformed input nor a regression — EXCEPT
    # when a *headline* metric that the committed baseline carries has
    # vanished from the candidate run. A harness refactor silently
    # dropping e.g. a kvserve_* speedup would otherwise let the very
    # metric this script guards disappear without a trace, so that case
    # warns loudly and shares the headline exit code (5).
    side = "fresh results" if key in b else "baseline"
    if key in b and "speedup" in key and any(h in key for h in HEADLINE):
        print(
            f"::warning::bench_compare: headline metric {key} disappeared from "
            f"the candidate results — the harness no longer measures it"
        )
        headline_regressed += 1
        continue
    print(f"bench_compare: note: {key} missing from {side} — skipped")
for key in sorted(set(b) & set(f)):
    if any(s in key for s in SKIP):
        continue
    if "parallel" in key and "speedup" in key and not multicore:
        print(
            f"bench_compare: note: {key} skipped — "
            f"single-core host ({cores(fresh)} fresh / {cores(base)} baseline core(s))"
        )
        continue
    old, new = b[key], f[key]
    if old == 0:
        continue
    higher_better = any(t in key for t in HIGHER_IS_BETTER)
    delta = (old - new) / old if higher_better else (new - old) / old
    if delta > tol:
        direction = "dropped" if higher_better else "rose"
        print(
            f"::warning::bench_compare: {key} {direction} {delta * 100:.0f}% "
            f"({old:g} -> {new:g}, tolerance {tol * 100:.0f}%)"
        )
        warned += 1
        if "speedup" in key and any(h in key for h in HEADLINE):
            headline_regressed += 1
if warned == 0:
    print(f"bench_compare: all compared metrics within {tol * 100:.0f}% of the baseline")
else:
    print(f"bench_compare: {warned} metric(s) beyond tolerance (advisory only)")
if headline_regressed:
    print(
        f"::warning::bench_compare: {headline_regressed} headline speedup metric(s) "
        f"regressed or disappeared — the optimisation itself may have eroded"
    )
    sys.exit(5)
EOF
status=$?
[ "$status" -eq 0 ] || exit "$status"

exit 0
