//! Randomized stress: long interleavings of mmap / store / load /
//! migrate / munmap / futex operations against every OS design, checked
//! against a flat reference model of the address space. Any coherence,
//! replication, or teardown bug shows up as a value mismatch.

use stramash_repro::kernel::addr::{VirtAddr, PAGE_SIZE};
use stramash_repro::kernel::system::OsSystem;
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::sim::rng::SimRng;
use stramash_repro::sim::FaultPlan;
use stramash_repro::workloads::target::{SystemKind, TargetSystem};
use std::collections::HashMap;

struct Region {
    start: VirtAddr,
    pages: u64,
}

fn stress(kind: SystemKind, seed: u64, steps: u32) {
    stress_with_plan(kind, seed, steps, None);
}

fn stress_with_plan(kind: SystemKind, seed: u64, steps: u32, plan: Option<FaultPlan>) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    if let Some(plan) = plan {
        sys.install_fault_plan(plan, seed);
    }
    let pid = sys.spawn(DomainId::X86).unwrap();
    let mut rng = SimRng::new(seed);
    // The reference model: va → value for every word ever written.
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut regions: Vec<Region> = Vec::new();

    for step in 0..steps {
        match rng.gen_range(100) {
            // mmap a fresh region.
            0..=9 => {
                let pages = 1 + rng.gen_range(6);
                let start = sys.mmap(pid, pages * PAGE_SIZE, VmaProt::rw()).unwrap();
                regions.push(Region { start, pages });
            }
            // munmap a region (drop its model entries).
            10..=14 if regions.len() > 1 => {
                let idx = rng.gen_range(regions.len() as u64) as usize;
                let r = regions.swap_remove(idx);
                let freed = sys.munmap(pid, r.start).unwrap();
                let freed_total: u64 = freed.iter().sum();
                assert!(freed_total <= r.pages * 2, "freed more frames than pages mapped");
                model.retain(|va, _| {
                    !(*va >= r.start.raw() && *va < r.start.raw() + r.pages * PAGE_SIZE)
                });
            }
            // migrate.
            15..=24 if kind.migrates() => {
                let to = if rng.gen_range(2) == 0 { DomainId::X86 } else { DomainId::ARM };
                sys.migrate(pid, to).unwrap();
            }
            // store a word.
            25..=64 if !regions.is_empty() => {
                let r = &regions[rng.gen_range(regions.len() as u64) as usize];
                let off = rng.gen_range(r.pages * PAGE_SIZE / 8) * 8;
                let va = r.start.offset(off);
                let value = rng.next_u64();
                sys.store_u64(pid, va, value).unwrap();
                model.insert(va.raw(), value);
            }
            // load and check a word.
            65..=94 if !regions.is_empty() => {
                let r = &regions[rng.gen_range(regions.len() as u64) as usize];
                let off = rng.gen_range(r.pages * PAGE_SIZE / 8) * 8;
                let va = r.start.offset(off);
                let got = sys.load_u64(pid, va).unwrap();
                let expect = model.get(&va.raw()).copied().unwrap_or(0);
                assert_eq!(
                    got, expect,
                    "{kind:?} seed {seed} step {step}: stale read at {va} \
                     (domain {:?})",
                    sys.current_domain(pid).unwrap()
                );
            }
            // futex lock/unlock from a random domain.
            _ if !regions.is_empty() => {
                let r = &regions[0];
                let word = r.start;
                let d = if rng.gen_range(2) == 0 { DomainId::X86 } else { DomainId::ARM };
                if kind == SystemKind::Vanilla {
                    // Vanilla futexes are local-only.
                    sys.futex_lock(pid, DomainId::X86, word).unwrap();
                    sys.futex_unlock(pid, DomainId::X86, word).unwrap();
                } else {
                    sys.futex_lock(pid, d, word).unwrap();
                    sys.futex_unlock(pid, d.other(), word).unwrap();
                }
                // The futex word toggles 1 → 0; keep the model in step.
                model.insert(word.raw(), 0);
            }
            _ => {}
        }
        // Bootstrap: make sure a region exists early.
        if regions.is_empty() {
            let start = sys.mmap(pid, 4 * PAGE_SIZE, VmaProt::rw()).unwrap();
            regions.push(Region { start, pages: 4 });
        }
    }

    // Final sweep: everything the model remembers must read back
    // identically from the origin kernel.
    if kind.migrates() {
        sys.migrate(pid, DomainId::X86).unwrap();
    }
    for (&va, &expect) in &model {
        let got = sys.load_u64(pid, VirtAddr::new(va)).unwrap();
        assert_eq!(got, expect, "{kind:?} seed {seed}: final sweep mismatch at {va:#x}");
    }

    // The invariant auditor must stay silent whether or not faults were
    // injected along the way.
    let violations = sys.audit();
    assert!(violations.is_empty(), "{kind:?} seed {seed}: {violations:?}");
    if let Some(plan) = plan {
        if !plan.is_noop() {
            let c = sys.fault_injector().unwrap().borrow().counters();
            assert!(c.injected > 0, "{kind:?} seed {seed}: fault schedule never fired");
            assert_eq!(c.fatal, 0, "{kind:?} seed {seed}: injected faults must be survivable");
        }
    }
}

#[test]
fn stress_vanilla() {
    for seed in [1, 2, 3] {
        stress(SystemKind::Vanilla, seed, 600);
    }
}

#[test]
fn stress_popcorn_shm() {
    for seed in [11, 12, 13] {
        stress(SystemKind::PopcornShm, seed, 600);
    }
}

#[test]
fn stress_popcorn_tcp() {
    stress(SystemKind::PopcornTcp, 21, 400);
}

#[test]
fn stress_stramash() {
    for seed in [31, 32, 33, 34] {
        stress(SystemKind::Stramash, seed, 600);
    }
}

#[test]
fn stress_under_fault_schedule() {
    // The same randomized interleavings, now with every fault class
    // armed at once. The reference model must still match word for
    // word and the auditors must stay clean.
    let plan = FaultPlan::none()
        .with_msg_drop(0.05)
        .with_msg_corrupt(0.02)
        .with_msg_delay(0.05, 2_000)
        .with_ack_drop(0.02)
        .with_ipi_loss(0.01)
        .with_alloc_fail(0.02)
        .with_lock_contention(0.05);
    for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
        stress_with_plan(kind, 41, 600, Some(plan));
    }
}
