//! Deterministic fault injection, end to end: workloads run under a
//! seeded fault schedule must produce *byte-identical functional
//! results* to a fault-free run — only the cycle accounting may differ
//! — every recovery must be visible in the stats counters, the
//! invariant auditors must stay silent, and the same seed must replay
//! the identical fault sequence.

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::sim::FaultPlan;
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::recovery::{run_kv_recovered, RecoveryConfig};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// The ISSUE acceptance schedule: ≥1 % message drop, ≥0.1 % IPI loss,
/// and one forced global-allocator exhaustion. The drop rate is set
/// well above the 1 % floor so the schedule fires even on short runs
/// (NPB IS Tiny exchanges only a few dozen messages).
fn acceptance_plan() -> FaultPlan {
    FaultPlan::none()
        .with_msg_drop(0.08)
        .with_ipi_loss(0.002)
        .with_galloc_exhaust_at(3)
}

const SEED: u64 = 0xfa57_135d;

#[test]
fn npb_is_functional_results_survive_fault_schedule() {
    for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
        let mut clean = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let pid = clean.spawn(DomainId::X86).unwrap();
        let want = run_npb(NpbKind::Is, &mut clean, pid, Class::Tiny, true).unwrap();
        assert!(want.verified);

        let mut faulty = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        faulty.install_fault_plan(acceptance_plan(), SEED);
        let pid = faulty.spawn(DomainId::X86).unwrap();
        let got = run_npb(NpbKind::Is, &mut faulty, pid, Class::Tiny, true).unwrap();

        assert_eq!(got, want, "{kind}: faults changed the functional outcome");
        let c = faulty.fault_injector().unwrap().borrow().counters();
        assert!(c.injected > 0, "{kind}: the schedule must actually fire");
        assert_eq!(c.fatal, 0, "{kind}: every injected fault must be survivable");
        let violations = faulty.audit();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
    }
}

#[test]
fn kv_store_10k_requests_identical_under_fault_schedule() {
    let mut clean = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let want = run_kv(&mut clean, KvOp::Set, 10_000, 64).unwrap();

    let mut faulty = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    faulty.install_fault_plan(acceptance_plan(), SEED);
    let got = run_kv(&mut faulty, KvOp::Set, 10_000, 64).unwrap();

    assert_eq!(got.checksum, want.checksum, "faults corrupted the stored values");
    assert_eq!(got.requests, want.requests);

    // Every recovery is visible: the injector fired, the messaging
    // layer retransmitted, and nothing was fatal.
    let c = faulty.fault_injector().unwrap().borrow().counters();
    assert!(c.injected > 0);
    assert!(c.recovered > 0);
    assert_eq!(c.fatal, 0);
    assert!(faulty.base().msg.counters().retransmits() > 0);
    let recovered: u64 =
        [DomainId::X86, DomainId::ARM].iter().map(|&d| faulty.base().mem.stats(d).faults_recovered).sum();
    assert!(recovered > 0, "recoveries must surface in DomainStats");
    let violations = faulty.audit();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn kv_responses_identical_after_mid_stream_domain_crash() {
    // The fail-stop tier of the failure model, layered on top of the
    // transient acceptance schedule: message drops and IPI loss keep
    // firing *and* one domain dies outright mid-stream. The kernel
    // watchdog must detect the silence, restart from the last periodic
    // checkpoint and replay — and every KV response byte must come out
    // identical to the crash-free baseline.
    let rc = RecoveryConfig { checkpoint_every: 64, ..RecoveryConfig::default() };
    let clean = run_kv_recovered(
        TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap(),
        KvOp::Set,
        500,
        64,
        &rc,
    )
    .unwrap();
    assert_eq!(clean.crashes, 0);

    let mut plan = acceptance_plan();
    plan.crash = Some((1, 200)); // ARM dies 200 supervised ticks in
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    sys.install_fault_plan(plan, SEED);
    let hurt = run_kv_recovered(sys, KvOp::Set, 500, 64, &rc).unwrap();

    assert_eq!(hurt.crashes, 1, "the domain crash must fire");
    assert_eq!(hurt.restarts, 1, "the watchdog must restart from checkpoint");
    assert_eq!(hurt.result.requests, clean.result.requests);
    assert_eq!(
        hurt.result.checksum, clean.result.checksum,
        "KV responses must be byte-identical after watchdog recovery"
    );
    let c = hurt.sys.fault_injector().unwrap().borrow().counters();
    assert!(c.injected > 0, "the transient schedule must keep firing alongside the crash");
    let violations = hurt.sys.audit();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn same_seed_replays_identical_fault_sequence() {
    let run = || {
        let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        sys.install_fault_plan(
            FaultPlan::none().with_msg_drop(0.1).with_ipi_loss(0.05).with_lock_contention(0.2),
            SEED,
        );
        let pid = sys.spawn(DomainId::X86).unwrap();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        for i in 0..16u64 {
            sys.store_u64(pid, va.offset(i * 4096), i).unwrap();
        }
        sys.migrate(pid, DomainId::ARM).unwrap();
        for i in 0..16u64 {
            assert_eq!(sys.load_u64(pid, va.offset(i * 4096)).unwrap(), i);
        }
        sys.migrate(pid, DomainId::X86).unwrap();
        let inj = sys.fault_injector().unwrap().borrow();
        (inj.log().to_vec(), inj.counters())
    };
    let (log_a, counters_a) = run();
    let (log_b, counters_b) = run();
    assert!(!log_a.is_empty(), "schedule must fire at least once");
    assert_eq!(log_a, log_b, "same seed must replay the identical fault sequence");
    assert_eq!(counters_a, counters_b);
}

#[test]
fn corruption_and_delay_are_recovered_transparently() {
    let mut sys = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
    sys.install_fault_plan(
        FaultPlan::none().with_msg_corrupt(0.15).with_msg_delay(0.2, 5_000).with_ack_drop(0.1),
        SEED,
    );
    let pid = sys.spawn(DomainId::X86).unwrap();
    let va = sys.mmap(pid, 32 << 10, VmaProt::rw()).unwrap();
    sys.migrate(pid, DomainId::ARM).unwrap();
    for i in 0..8u64 {
        sys.store_u64(pid, va.offset(i * 4096), 0xc0de + i).unwrap();
    }
    sys.migrate(pid, DomainId::X86).unwrap();
    for i in 0..8u64 {
        assert_eq!(sys.load_u64(pid, va.offset(i * 4096)).unwrap(), 0xc0de + i);
    }
    let c = sys.base().msg.counters();
    assert!(c.retransmits() > 0, "corrupt/dropped-ack messages must be retransmitted");
    assert!(sys.audit().is_empty());
}

#[test]
fn ecc_scrub_recovers_injected_single_bit_flip_end_to_end() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
    sys.store_u64(pid, va, 0xdead_beef).unwrap();
    let (pa, _) = sys.translate(pid, va, false).unwrap();
    sys.base_mut().mem.inject_bit_flip(pa, 17, false);
    let report = sys.base_mut().mem.ecc_scrub(DomainId::X86);
    assert_eq!(report.corrected, 1);
    assert_eq!(report.uncorrectable, 0);
    assert_eq!(sys.load_u64(pid, va).unwrap(), 0xdead_beef, "scrub must repair the word");
    assert_eq!(sys.base().mem.stats(DomainId::X86).faults_recovered, 1);
}

#[test]
fn fault_free_plan_changes_nothing() {
    // Installing a no-op plan must not consume RNG or change a single
    // cycle of the cost model.
    let mut plain = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = plain.spawn(DomainId::X86).unwrap();
    let r_plain = run_npb(NpbKind::Is, &mut plain, pid, Class::Tiny, true).unwrap();
    let t_plain = plain.runtime();

    let mut noop = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    noop.install_fault_plan(FaultPlan::none(), SEED);
    let pid = noop.spawn(DomainId::X86).unwrap();
    let r_noop = run_npb(NpbKind::Is, &mut noop, pid, Class::Tiny, true).unwrap();

    assert_eq!(r_plain, r_noop);
    assert_eq!(t_plain, noop.runtime(), "a no-op plan must not change timing");
    assert!(noop.fault_injector().unwrap().borrow().log().is_empty());
}
