//! Checkpoint/restore + crash-recovery acceptance tests.
//!
//! The contract pinned here, on the same fixed workload family as
//! `tests/golden_stats.rs`:
//!
//! 1. For all four [`SystemKind`]s, checkpoint → restore into a *fresh*
//!    machine → resume produces the same fingerprint (runtime, cache
//!    levels, TLB counters, message totals, KV checksum) **and** the
//!    identical trace event stream as the uninterrupted run. A restored
//!    system is bit-identical going forward, not merely "close".
//! 2. A mid-run `DomainCrash` detected by the kernel watchdog and
//!    recovered by restart-from-checkpoint completes the NPB IS and the
//!    10K-request KV workloads with byte-identical results to the
//!    crash-free baseline.
//! 3. Checkpoint artifacts are self-validating: a corrupted byte or a
//!    kind mismatch fails the typed decode, never a panic or a silently
//!    wrong machine.

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::trace::{shared_tracer, TraceEvent};
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::recovery::{
    run_is_recovered, run_kv_recovered, RecoveryConfig,
};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// Lossless ring for the resumed segment of the fixed workload.
const RING_CAPACITY: usize = 1 << 20;

/// Everything the resumed run is allowed to influence, captured exactly
/// (the `golden_stats.rs` fingerprint shape).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    runtime: u64,
    messages: u64,
    kv_checksum: u64,
    levels: [[u64; 9]; 2],
    tlb: [[u64; 2]; 2],
}

fn capture(sys: &TargetSystem, kv_checksum: u64) -> Fingerprint {
    let levels = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [
            s.l1i.accesses,
            s.l1i.hits,
            s.l1d.accesses,
            s.l1d.hits,
            s.l2.accesses,
            s.l2.hits,
            s.l3.accesses,
            s.l3.hits,
            s.mem_accesses,
        ]
    });
    let tlb = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [s.tlb_hits, s.tlb_misses]
    });
    Fingerprint {
        runtime: sys.runtime().raw(),
        messages: sys.base().msg.counters().total(),
        kv_checksum,
        levels,
        tlb,
    }
}

/// Runs the NPB IS prefix and returns the system plus its checkpoint
/// artifact — the fork point both branches resume from.
fn prefix(kind: SystemKind) -> (TargetSystem, Vec<u8>) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let npb = run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, kind.migrates()).unwrap();
    assert!(npb.verified, "{kind}: NPB IS failed verification");
    let artifact = sys.checkpoint();
    (sys, artifact)
}

/// Resumes a system with the fixed KV tail under a fresh tracer and
/// captures the fingerprint plus the post-resume event stream.
fn resume(mut sys: TargetSystem, kind: SystemKind) -> (Fingerprint, Vec<TraceEvent>) {
    let tracer = shared_tracer(RING_CAPACITY);
    sys.install_tracer(tracer.clone());
    let kv = run_kv(&mut sys, KvOp::Set, 200, 64).unwrap();
    let fp = capture(&sys, kv.checksum);
    let t = tracer.borrow();
    assert_eq!(t.dropped(), 0, "{kind}: the ring must be lossless for this workload");
    (fp, t.events())
}

#[test]
fn restored_system_is_bit_identical_going_forward() {
    for kind in SystemKind::ALL {
        // Branch A: keep running the original machine.
        let (sys, artifact) = prefix(kind);
        let (want_fp, want_events) = resume(sys, kind);

        // Branch B: restore the artifact into a fresh machine and run
        // the identical tail.
        let (sys, artifact_b) = prefix(kind);
        assert_eq!(artifact, artifact_b, "{kind}: checkpointing must be deterministic");
        let mut fresh = TargetSystem::build_with(kind, sys.config().clone()).unwrap();
        fresh.restore(&artifact).unwrap();
        let (got_fp, got_events) = resume(fresh, kind);

        assert_eq!(got_fp, want_fp, "{kind}: restored run drifted from the uninterrupted run");
        assert_eq!(
            got_events.len(),
            want_events.len(),
            "{kind}: restored run emitted a different number of trace events"
        );
        assert_eq!(
            got_events, want_events,
            "{kind}: restored run emitted a different trace stream"
        );
    }
}

#[test]
fn restore_rejects_corruption_and_kind_mismatch() {
    let (_, artifact) = prefix(SystemKind::Stramash);
    let cfg = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)
        .unwrap()
        .config()
        .clone();

    // Flip one payload byte: the CRC must catch it.
    let mut corrupt = artifact.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let mut sys = TargetSystem::build_with(SystemKind::Stramash, cfg.clone()).unwrap();
    assert!(sys.restore(&corrupt).is_err(), "corrupted artifact must fail the decode");

    // Restoring a Stramash artifact into a Vanilla machine is a typed
    // error, not a half-restored hybrid.
    let mut other = TargetSystem::build_with(SystemKind::Vanilla, cfg).unwrap();
    assert!(other.restore(&artifact).is_err(), "kind mismatch must be rejected");

    // Truncation at any point must also fail cleanly.
    let mut sys = TargetSystem::build_with(
        SystemKind::Stramash,
        TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)
            .unwrap()
            .config()
            .clone(),
    )
    .unwrap();
    assert!(sys.restore(&artifact[..artifact.len() - 8]).is_err());
}

fn crash_plan(domain: u8, at_tick: u64) -> stramash_repro::sim::FaultPlan {
    let mut p = stramash_repro::sim::FaultPlan::none();
    p.crash = Some((domain, at_tick));
    p
}

#[test]
fn npb_is_completes_byte_identically_after_watchdog_restart() {
    let rc = RecoveryConfig {
        checkpoint_every: 1,
        watchdog_threshold: 1,
        ..RecoveryConfig::default()
    };
    let clean =
        run_is_recovered(TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap(), Class::Tiny, &rc)
            .unwrap();
    assert!(clean.result.verified);

    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    sys.install_fault_plan(crash_plan(1, 1), 0x15_c0de);
    let hurt = run_is_recovered(sys, Class::Tiny, &rc).unwrap();

    assert_eq!(hurt.crashes, 1, "the injected crash must fire");
    assert!(hurt.restarts >= 1, "the watchdog must restart from checkpoint");
    assert!(hurt.result.verified, "recovered IS must still produce a sorted ranking");
    assert_eq!(hurt.result.checksum, clean.result.checksum, "IS checksum drifted after recovery");
    assert_eq!(hurt.result.procedures, clean.result.procedures);
    assert!(hurt.sys.audit().is_empty(), "auditor violations after IS recovery");
}

#[test]
fn kv_10k_requests_complete_byte_identically_after_watchdog_restart() {
    // 10 000 requests, one per supervised step; a periodic checkpoint
    // every 1024 steps and a domain crash mid-stream. The recovered
    // run's response checksum — a fold over every response byte — must
    // equal the crash-free baseline's exactly.
    let rc = RecoveryConfig { checkpoint_every: 1024, ..RecoveryConfig::default() };
    let clean = run_kv_recovered(
        TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap(),
        KvOp::Set,
        10_000,
        64,
        &rc,
    )
    .unwrap();
    assert_eq!(clean.crashes, 0);

    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    sys.install_fault_plan(crash_plan(1, 5_000), 0x1031_c0de);
    let hurt = run_kv_recovered(sys, KvOp::Set, 10_000, 64, &rc).unwrap();

    assert_eq!(hurt.crashes, 1, "the injected crash must fire");
    assert_eq!(hurt.restarts, 1, "the watchdog must restart from checkpoint exactly once");
    assert_eq!(hurt.result.requests, clean.result.requests);
    assert_eq!(
        hurt.result.checksum, clean.result.checksum,
        "KV responses drifted after watchdog recovery"
    );
    assert!(hurt.sys.audit().is_empty(), "auditor violations after KV recovery");
}
