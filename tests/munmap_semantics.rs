//! `munmap` under every OS design: mappings disappear, frames return to
//! their owners, and the design-specific ownership disciplines hold.

use stramash_repro::kernel::addr::PAGE_SIZE;
use stramash_repro::kernel::system::{OsError, OsSystem};
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

fn allocated(sys: &TargetSystem, d: DomainId) -> u64 {
    sys.base().kernels[d.index()].frames.allocated_frames()
}

#[test]
fn vanilla_munmap_frees_local_frames() {
    let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let before = allocated(&sys, DomainId::X86);
    let buf = sys.mmap(pid, 8 * PAGE_SIZE, VmaProt::rw()).unwrap();
    for p in 0..8u64 {
        sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
    }
    let freed = sys.munmap(pid, buf).unwrap();
    assert_eq!(freed[0], 8);
    assert_eq!(freed[1], 0);
    // Frame accounting returns to the pre-mmap level (page-table frames
    // remain, so compare user-page deltas only).
    assert!(allocated(&sys, DomainId::X86) >= before);
    // The region is gone: access segfaults.
    assert!(matches!(sys.load_u64(pid, buf), Err(OsError::Segfault { .. })));
}

#[test]
fn popcorn_munmap_frees_both_replicas() {
    let mut sys = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 4 * PAGE_SIZE, VmaProt::rw()).unwrap();
    // Origin writes, remote reads: every page ends up replicated on
    // both kernels.
    for p in 0..4u64 {
        sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
    }
    sys.migrate(pid, DomainId::ARM).unwrap();
    for p in 0..4u64 {
        sys.load_u64(pid, buf.offset(p * PAGE_SIZE)).unwrap();
    }
    let freed = sys.munmap(pid, buf).unwrap();
    assert_eq!(freed[0], 4, "origin copies freed");
    assert_eq!(freed[1], 4, "remote replicas freed");
    assert!(matches!(
        sys.load_u64(pid, buf),
        Err(OsError::Segfault { .. })
    ));
}

#[test]
fn stramash_munmap_respects_allocation_ownership() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 8 * PAGE_SIZE, VmaProt::rw()).unwrap();
    // Half the pages allocated by the origin, half by the remote kernel
    // (single frames, mapped in both page tables).
    for p in 0..4u64 {
        sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
    }
    sys.migrate(pid, DomainId::ARM).unwrap();
    for p in 4..8u64 {
        sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
    }
    let msgs_before = sys.message_total();
    let freed = sys.munmap(pid, buf).unwrap();
    assert_eq!(sys.message_total(), msgs_before, "fused munmap is message-free");
    assert_eq!(freed[0], 4, "x86 frees exactly what it allocated");
    assert_eq!(freed[1], 4, "Arm frees exactly what it allocated");
    assert_eq!(freed.iter().sum::<u64>(), 8, "no double frees, no leaks");
}

#[test]
fn munmap_unknown_vma_is_an_error() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let err = sys.munmap(pid, stramash_repro::kernel::VirtAddr::new(0x9999_0000)).unwrap_err();
    assert!(matches!(err, OsError::Segfault { .. }));
}

#[test]
fn address_space_can_be_reused_after_munmap() {
    // mmap → fill → munmap → mmap again; the new region must demand-page
    // fresh zero pages, not resurrect stale state.
    let mut sys = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let a = sys.mmap(pid, 4 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, a, 0xdead).unwrap();
    sys.migrate(pid, DomainId::ARM).unwrap();
    assert_eq!(sys.load_u64(pid, a).unwrap(), 0xdead);
    sys.munmap(pid, a).unwrap();
    let b = sys.mmap(pid, 4 * PAGE_SIZE, VmaProt::rw()).unwrap();
    assert_eq!(sys.load_u64(pid, b).unwrap(), 0, "fresh pages are zeroed");
    sys.store_u64(pid, b, 0xbeef).unwrap();
    sys.migrate(pid, DomainId::X86).unwrap();
    assert_eq!(sys.load_u64(pid, b).unwrap(), 0xbeef);
}
