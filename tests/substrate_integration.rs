//! Integration of the supporting subsystems with full runs: the
//! perf+icount tool, shared devices, data packing, messaging polling
//! mode, and the register-state transformation.

use stramash_repro::isa::regs::{self, RegFile, X86RegFile};
use stramash_repro::isa::IsaKind;
use stramash_repro::kernel::device::{DeviceClass, DeviceRegistry};
use stramash_repro::kernel::msg::{Message, MsgType, Transport};
use stramash_repro::kernel::packing::{PackedRegion, SharingClass};
use stramash_repro::kernel::system::{protocol_round_trip, BaseSystem, OsSystem};
use stramash_repro::kernel::BootConfig;
use stramash_repro::mem::PhysAddr;
use stramash_repro::prelude::*;
use stramash_repro::sim::ipi::NotifyMode;
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// The §7.3 perf tool attributes each offloaded procedure to the domain
/// that ran it across a full NPB run.
#[test]
fn perf_tool_attributes_phases_across_migrations() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let out = run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, true).unwrap();
    assert!(out.verified);
    let phases = sys.base().perf.phases();
    // 2 iterations → 4 migrations → 5 markers → 4 closed phases (the
    // final verification segment after the last back-migration has no
    // closing marker).
    assert!(phases.len() >= 4, "got {} phases", phases.len());
    // The setup phase (key generation) ran on x86.
    assert_eq!(phases[0].label, "start");
    assert_eq!(phases[0].dominant_domain(), DomainId::X86);
    assert!(phases[0].insns.iter().sum::<u64>() > 0, "setup must retire instructions");
    // Offloaded procedures ran on Arm.
    let arm_phase =
        phases.iter().find(|p| p.label == "migrate x86->arm").expect("offload phase exists");
    assert_eq!(arm_phase.dominant_domain(), DomainId::ARM);
    // Per-domain totals are consistent with the clocks.
    let [x86_insns, arm_insns] = sys.base().perf.per_domain_insns();
    assert!(x86_insns > 0 && arm_insns > 0);
    let report = sys.base().perf.report();
    assert!(report.contains("migrate arm->x86"));
}

/// Device MMIO state is shared across instances, with redirection costs
/// for the non-owner (§7.4).
#[test]
fn devices_shared_across_instances() {
    let mut reg = DeviceRegistry::paper_platform();
    let nic = reg
        .devices()
        .iter()
        .find(|d| d.class == DeviceClass::Nic)
        .map(|d| d.mmio_base)
        .unwrap();
    // x86 (owner) programs a ring doorbell; Arm reads it back through
    // redirection.
    let c_local = reg.mmio_write(DomainId::X86, nic.offset(8), 0x1234).unwrap();
    let (v, c_remote) = reg.mmio_read(DomainId::ARM, nic.offset(8)).unwrap();
    assert_eq!(v, 0x1234);
    assert!(c_remote > c_local);
    assert_eq!(reg.forwarded_from(DomainId::ARM), 1);
}

/// Data packing segregates shared kernel structures into the shared
/// window and proves the isolation invariant (§5).
#[test]
fn packing_prepares_hardware_enforcement() {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut mem = stramash_repro::mem::MemorySystem::new(cfg).unwrap();
    // Shared window in the pool; private window in x86 memory.
    let mut packer = PackedRegion::new(
        DomainId::X86,
        PhysAddr::new((4u64 << 30) + (200 << 20)),
        4 << 20,
        PhysAddr::new(256 << 20),
        4 << 20,
    );
    // The §6.4/§6.5 shared structures…
    let futex_list = packer.place(1, 4096, SharingClass::Shared).unwrap();
    let vma_lock = packer.place(2, 64, SharingClass::Shared).unwrap();
    // …and private ones.
    packer.place(3, 1 << 16, SharingClass::Private).unwrap();
    // A structure allocated before classification gets moved in.
    let stray = PhysAddr::new(300 << 20);
    mem.store_mut().write_u64(stray, 0xfee1);
    let (moved, cycles) = packer.adopt(&mut mem, 4, stray, 4096, SharingClass::Shared).unwrap();
    assert!(cycles.raw() > 0);
    assert_eq!(mem.store().read_u64(moved), 0xfee1);
    packer.verify_isolation().unwrap();
    let (base, len) = packer.shared_window();
    for pa in [futex_list, vma_lock, moved] {
        assert!(pa.raw() >= base.raw() && pa.raw() < base.raw() + len);
    }
    assert_eq!(packer.pages_moved(), 1);
}

/// Polling-mode messaging trades the IPI for receiver poll reads (§6.2).
#[test]
fn polling_messaging_round_trip_is_cheaper() {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let cost_with = |notify: NotifyMode| {
        let boot =
            BootConfig { transport: Transport::Shm { notify }, ..BootConfig::paper_default() };
        let mut base = BaseSystem::new(cfg.clone(), &boot).unwrap();
        protocol_round_trip(
            &mut base,
            DomainId::X86,
            Message::control(MsgType::FutexRequest),
            Message::control(MsgType::FutexResponse),
            Cycles::new(400),
        )
    };
    let interrupt = cost_with(NotifyMode::Interrupt);
    let polling = cost_with(NotifyMode::Polling);
    assert!(polling < interrupt, "polling {polling} must undercut IPI {interrupt}");
    // But polling is not free: the head-word checks are real reads.
    assert!(polling.raw() > 1000);
}

/// The register-state transformation is exact at equivalence points and
/// its cost is charged by migration.
#[test]
fn migration_transforms_register_state() {
    // Pure transformation check.
    let mut r = X86RegFile { rip: 0x40_2000, ..Default::default() };
    r.gpr[regs::x86_reg::RSP] = 0x7ffd_e000;
    let (arm, cost) = regs::transform(&RegFile::X86(r), IsaKind::Aarch64);
    assert_eq!(cost, regs::TRANSFORM_INSNS);
    assert_eq!(regs::capture(&arm).sp, 0x7ffd_e000);

    // The OS charges the transformation at the destination: a migration
    // retires TRANSFORM_INSNS instructions on the target domain.
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let arm_insns_before = sys.base().timebase.clock(DomainId::ARM).icount();
    sys.migrate(pid, DomainId::ARM).unwrap();
    let arm_insns_after = sys.base().timebase.clock(DomainId::ARM).icount();
    assert!(
        arm_insns_after - arm_insns_before >= regs::TRANSFORM_INSNS,
        "destination must execute the state transformation"
    );
}

/// §5 end to end: contiguous buddy blocks feed the data packer's
/// windows, and the isolation invariant holds over real kernel memory.
#[test]
fn contiguous_allocation_feeds_data_packing() {
    use stramash_repro::kernel::packing::{PackedRegion, SharingClass};
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let base = sys.base_mut();
    // Carve two contiguous, naturally aligned windows out of each
    // kernel's buddy-managed memory.
    let shared_win = base.kernels[0].frames.alloc_contiguous(256).unwrap(); // 1 MB
    let private_win = base.kernels[0].frames.alloc_contiguous(256).unwrap();
    assert!(shared_win.is_aligned(256 * 4096), "buddy gives natural alignment");
    let mut packer =
        PackedRegion::new(DomainId::X86, shared_win, 256 * 4096, private_win, 256 * 4096);
    packer.place(1, 4096, SharingClass::Shared).unwrap();
    packer.place(2, 4096, SharingClass::Private).unwrap();
    packer.verify_isolation().unwrap();
    // The windows really are kernel-owned physical memory.
    assert!(base.kernels[0].frames.owns(shared_win));
    assert!(base.kernels[0].frames.owns(private_win));
}
