//! Determinism contract for the event tracer (`sim::trace`).
//!
//! The tracer is a passive observer: it must never change a simulated
//! cycle, and the stream it records must be a pure function of the
//! simulated execution, not of host-side pipeline choices. Pinned here,
//! on the same fixed workload as `tests/golden_stats.rs` (NPB IS Tiny +
//! 500 KV sets, all four [`SystemKind`]s):
//!
//! 1. Installing a tracer leaves the golden fingerprint untouched.
//! 2. Two same-seed runs emit byte-identical event streams.
//! 3. The host fast paths and the reference slow paths emit identical
//!    streams — not just identical totals.
//! 4. The batched pipeline and scalar client ops emit identical
//!    per-class subsequences for every [`EventClass`] except
//!    `Accounting`, whose `Charge`/`Retire` events batching coalesces
//!    (totals must still match exactly).
//! 5. [`reconstruct_domain_stats`] rebuilds the end-of-run
//!    `DomainStats::report` blocks — including `Runtime` — from the
//!    stream alone.

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::trace::{reconstruct_domain_stats, shared_tracer, EventClass, TraceEvent};
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// Large enough that no run drops an event — a lossy ring would make
/// both the stream comparisons and the reconstruction meaningless.
const RING_CAPACITY: usize = 1 << 20;

/// The golden-stats fingerprint, duplicated here because integration
/// tests cannot share items (and drifting from `golden_stats.rs` would
/// itself be a finding).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    runtime: u64,
    messages: u64,
    kv_checksum: u64,
    levels: [[u64; 9]; 2],
    tlb: [[u64; 2]; 2],
}

/// What a traced run yields beyond the fingerprint.
struct Traced {
    events: Vec<TraceEvent>,
    /// Live `DomainStats::report` blocks, captured after
    /// `sync_runtime_stats` so `Runtime:` reflects the domain clocks.
    live_reports: [String; 2],
}

/// Runs the fixed workload, optionally under a tracer. The tracer is
/// installed before `spawn` so the stream covers every `Charge` /
/// `Retire` the clocks ever see — that is what makes the reconstructed
/// runtime exact rather than approximate.
fn run(kind: SystemKind, fast_paths: bool, batching: bool, traced: bool) -> (Fingerprint, Option<Traced>) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    sys.base_mut().mem.set_fast_paths(fast_paths);
    sys.base_mut().set_batching(batching);
    let tracer = traced.then(|| {
        let t = shared_tracer(RING_CAPACITY);
        sys.install_tracer(t.clone());
        t
    });
    let pid = sys.spawn(DomainId::X86).unwrap();
    let npb = run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, kind.migrates()).unwrap();
    assert!(npb.verified, "{kind}: NPB IS failed verification");
    let kv = run_kv(&mut sys, KvOp::Set, 500, 64).unwrap();
    sys.base_mut().sync_runtime_stats();
    let levels = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [
            s.l1i.accesses,
            s.l1i.hits,
            s.l1d.accesses,
            s.l1d.hits,
            s.l2.accesses,
            s.l2.hits,
            s.l3.accesses,
            s.l3.hits,
            s.mem_accesses,
        ]
    });
    let tlb = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [s.tlb_hits, s.tlb_misses]
    });
    let fingerprint = Fingerprint {
        runtime: sys.runtime().raw(),
        messages: sys.base().msg.counters().total(),
        kv_checksum: kv.checksum,
        levels,
        tlb,
    };
    let capture = tracer.map(|t| {
        let t = t.borrow();
        assert_eq!(t.dropped(), 0, "{kind}: the ring must be lossless for this workload");
        Traced {
            events: t.events(),
            live_reports: [DomainId::X86, DomainId::ARM]
                .map(|d| sys.base().mem.stats(d).report(&d.to_string())),
        }
    });
    (fingerprint, capture)
}

/// Asserts two streams are identical, reporting the first divergence
/// instead of dumping both vectors.
fn assert_streams_identical(a: &[TraceEvent], b: &[TraceEvent], ctx: &str) {
    if let Some(i) = a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        panic!("{ctx}: streams diverge at event {i}:\n  left:  {:?}\n  right: {:?}", a[i], b[i]);
    }
    assert_eq!(a.len(), b.len(), "{ctx}: one stream is a prefix of the other");
}

/// Per-domain `(retired instructions, charged cycles)` totals — the
/// quantities the `Accounting` class must conserve under batching.
fn accounting_totals(events: &[TraceEvent]) -> ([u64; 2], [u64; 2]) {
    let mut insns = [0u64; 2];
    let mut charged = [0u64; 2];
    for ev in events {
        match *ev {
            TraceEvent::Retire { domain, insns: n } => insns[domain.index()] += n,
            TraceEvent::Charge { domain, cost } => charged[domain.index()] += cost.raw(),
            _ => {}
        }
    }
    (insns, charged)
}

#[test]
fn tracing_does_not_change_the_fingerprint() {
    for kind in SystemKind::ALL {
        let (untraced, _) = run(kind, true, true, false);
        let (traced, capture) = run(kind, true, true, true);
        assert_eq!(untraced, traced, "{kind}: installing a tracer changed simulated timing");
        assert!(!capture.unwrap().events.is_empty(), "{kind}: traced run recorded nothing");
    }
}

#[test]
fn same_seed_runs_emit_identical_streams() {
    for kind in SystemKind::ALL {
        let (fa, a) = run(kind, true, true, true);
        let (fb, b) = run(kind, true, true, true);
        assert_eq!(fa, fb, "{kind}: same-seed runs disagree on the fingerprint");
        assert_streams_identical(
            &a.unwrap().events,
            &b.unwrap().events,
            &format!("{kind}: same-seed runs"),
        );
    }
}

#[test]
fn fast_and_slow_paths_emit_identical_streams() {
    for kind in SystemKind::ALL {
        let (ff, fast) = run(kind, true, true, true);
        let (fs, slow) = run(kind, false, true, true);
        assert_eq!(ff, fs, "{kind}: fast/slow paths disagree on the fingerprint");
        assert_streams_identical(
            &fast.unwrap().events,
            &slow.unwrap().events,
            &format!("{kind}: fast vs slow paths"),
        );
    }
}

#[test]
fn batched_and_scalar_pipelines_agree_per_class() {
    for kind in SystemKind::ALL {
        let (fb, batched) = run(kind, true, true, true);
        let (fs, scalar) = run(kind, true, false, true);
        assert_eq!(fb, fs, "{kind}: batched/scalar disagree on the fingerprint");
        let batched = batched.unwrap().events;
        let scalar = scalar.unwrap().events;
        for class in EventClass::ALL {
            if class == EventClass::Accounting {
                continue;
            }
            let lhs: Vec<_> = batched.iter().copied().filter(|e| e.class() == class).collect();
            let rhs: Vec<_> = scalar.iter().copied().filter(|e| e.class() == class).collect();
            assert_streams_identical(&lhs, &rhs, &format!("{kind}: batched vs scalar, {class:?}"));
        }
        // Batching may coalesce Charge/Retire funnels; the per-domain
        // totals — which are what the clocks actually saw — must match.
        assert_eq!(
            accounting_totals(&batched),
            accounting_totals(&scalar),
            "{kind}: batched vs scalar accounting totals"
        );
    }
}

#[test]
fn reconstructed_reports_match_the_live_system() {
    for kind in SystemKind::ALL {
        let (_, capture) = run(kind, true, true, true);
        let capture = capture.unwrap();
        let rebuilt = reconstruct_domain_stats(&capture.events);
        for d in DomainId::ALL {
            assert_eq!(
                rebuilt[d.index()].report(&d.to_string()),
                capture.live_reports[d.index()],
                "{kind}/{d}: report reconstructed from the stream drifted from the live stats"
            );
        }
    }
}
