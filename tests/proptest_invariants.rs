//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use stramash_repro::isa::pte::{decode_pte, encode_pte};
use stramash_repro::isa::{IsaKind, PteFlags, RawPte};
use stramash_repro::kernel::addr::VirtAddr;
use stramash_repro::kernel::vma::{Vma, VmaKind, VmaProt, VmaTree};
use stramash_repro::kernel::FrameAllocator;
use stramash_repro::mem::{Access, AccessKind, MemorySystem, PhysAddr, SparseMemory};
use stramash_repro::prelude::*;

fn arb_flags() -> impl Strategy<Value = PteFlags> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(writable, user, accessed, dirty, no_exec)| PteFlags {
            present: true,
            writable,
            user,
            accessed,
            dirty,
            no_exec,
        },
    )
}

fn arb_isa() -> impl Strategy<Value = IsaKind> {
    prop_oneof![Just(IsaKind::X86_64), Just(IsaKind::Aarch64)]
}

proptest! {
    /// PTE encode→decode is the identity for every flag combination and
    /// in-range PFN, on both ISAs.
    #[test]
    fn pte_codec_roundtrip(isa in arb_isa(), pfn in 0u64..(1 << 30), flags in arb_flags()) {
        let raw = encode_pte(isa.format(), pfn, flags);
        let (got_pfn, got_flags) = decode_pte(isa.format(), raw.raw).expect("present");
        prop_assert_eq!(got_pfn, pfn);
        prop_assert_eq!(got_flags, flags);
    }

    /// Cross-ISA PTE conversion preserves meaning in both directions
    /// (§6.4's reconfiguration is lossless).
    #[test]
    fn pte_conversion_is_lossless(pfn in 0u64..(1 << 30), flags in arb_flags()) {
        let arm = encode_pte(IsaKind::Aarch64.format(), pfn, flags);
        let x86 = arm.convert_to(IsaKind::X86_64);
        prop_assert_eq!(x86.decode(), Some((pfn, flags)));
        let back = x86.convert_to(IsaKind::Aarch64);
        prop_assert_eq!(back.raw, arm.raw);
        prop_assert!(RawPte::empty(IsaKind::X86_64).convert_to(IsaKind::Aarch64).decode().is_none());
    }

    /// Sparse memory behaves like a flat byte array: the last write to
    /// each byte wins, untouched bytes read zero.
    #[test]
    fn sparse_memory_is_a_byte_array(
        writes in prop::collection::vec((0u64..(1 << 20), any::<u8>(), 1usize..64), 1..40)
    ) {
        let mut mem = SparseMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, byte, len) in &writes {
            let data = vec![*byte; *len];
            mem.write(PhysAddr::new(*addr), &data);
            for off in 0..*len as u64 {
                model.insert(addr + off, *byte);
            }
        }
        for (addr, _, len) in &writes {
            let mut buf = vec![0u8; *len + 8];
            mem.read(PhysAddr::new(*addr), &mut buf);
            for (off, got) in buf.iter().enumerate() {
                let expect = model.get(&(addr + off as u64)).copied().unwrap_or(0);
                prop_assert_eq!(*got, expect);
            }
        }
    }

    /// The frame allocator never double-allocates and frees restore
    /// exact accounting.
    #[test]
    fn frame_allocator_uniqueness(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut alloc = FrameAllocator::new();
        alloc.add_region(PhysAddr::new(0x10_0000), 64 * 4096).unwrap();
        let mut live = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            if op || live.is_empty() {
                if let Ok(frame) = alloc.alloc() {
                    prop_assert!(frame.is_aligned(4096));
                    prop_assert!(seen.insert(frame), "frame {frame} double-allocated");
                    live.push(frame);
                }
            } else {
                let frame = live.swap_remove(live.len() / 2);
                alloc.free(frame).unwrap();
                seen.remove(&frame);
            }
            prop_assert_eq!(alloc.allocated_frames() as usize, live.len());
        }
    }

    /// The VMA tree never admits overlapping areas, and lookups agree
    /// with a naive model.
    #[test]
    fn vma_tree_no_overlap(
        areas in prop::collection::vec((0u64..256, 1u64..16), 1..30),
        probes in prop::collection::vec(0u64..0x120_000, 10)
    ) {
        let mut tree = VmaTree::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (start_page, pages) in areas {
            let start = start_page * 4096;
            let end = start + pages * 4096;
            let vma = Vma {
                start: VirtAddr::new(start),
                end: VirtAddr::new(end),
                prot: VmaProt::rw(),
                kind: VmaKind::Anon,
            };
            let overlaps = model.iter().any(|&(s, e)| s < end && start < e);
            match tree.insert(vma) {
                Ok(()) => {
                    prop_assert!(!overlaps, "tree accepted an overlapping area");
                    model.push((start, end));
                }
                Err(_) => prop_assert!(overlaps, "tree rejected a disjoint area"),
            }
        }
        for va in probes {
            let expect = model.iter().any(|&(s, e)| va >= s && va < e);
            prop_assert_eq!(tree.find(VirtAddr::new(va)).is_some(), expect);
        }
    }

    /// Memory-system coherence invariant: after any access sequence, a
    /// read on either domain returns the value of the last write,
    /// and per-level hits never exceed accesses.
    #[test]
    fn memory_system_coherence(
        ops in prop::collection::vec(
            (any::<bool>(), any::<bool>(), 0u64..64, any::<u64>()),
            1..120
        )
    ) {
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut mem = MemorySystem::new(cfg).unwrap();
        let base = 5u64 << 30; // the shared pool
        let mut model = std::collections::HashMap::new();
        for (is_arm, is_write, slot, value) in ops {
            let domain = if is_arm { DomainId::ARM } else { DomainId::X86 };
            let addr = PhysAddr::new(base + slot * 8);
            if is_write {
                mem.write_u64(domain, addr, value);
                model.insert(slot, value);
            } else {
                let (got, _) = mem.read_u64(domain, addr);
                prop_assert_eq!(got, model.get(&slot).copied().unwrap_or(0));
            }
        }
        for d in DomainId::ALL {
            let s = mem.stats(d);
            prop_assert!(s.l1d.hits <= s.l1d.accesses);
            prop_assert!(s.l2.hits <= s.l2.accesses);
            prop_assert!(s.l3.hits <= s.l3.accesses);
        }
    }

    /// Inclusive-hierarchy invariant: any line resident in a domain's
    /// L1/L2 is also resident in its L3 (back-invalidation on LLC
    /// eviction maintains this).
    #[test]
    fn cache_hierarchy_is_inclusive(
        ops in prop::collection::vec((any::<bool>(), any::<bool>(), 0u64..4096), 1..300)
    ) {
        // Tiny caches so evictions are frequent.
        let mut cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Separated);
        for d in &mut cfg.domains {
            d.cache = stramash_repro::sim::CacheConfig {
                l1i: stramash_repro::sim::CacheGeometry::new(256, 2, 64),
                l1d: stramash_repro::sim::CacheGeometry::new(256, 2, 64),
                l2: stramash_repro::sim::CacheGeometry::new(512, 2, 64),
                l3: stramash_repro::sim::CacheGeometry::new(1024, 2, 64),
            };
        }
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut touched = std::collections::HashSet::new();
        for (is_arm, is_write, line) in ops {
            let domain = if is_arm { DomainId::ARM } else { DomainId::X86 };
            let addr = PhysAddr::new(0x10_0000 + line * 64);
            let access = if is_write { Access::Write } else { Access::Read };
            mem.access(domain, addr, access, AccessKind::Data);
            touched.insert(line);
            // Check the invariant over everything touched so far.
            for &l in &touched {
                let a = PhysAddr::new(0x10_0000 + l * 64);
                for d in DomainId::ALL {
                    if mem.upper_levels_resident(d, a) {
                        prop_assert!(
                            mem.caches_line(d, a),
                            "line {l:#x} in {d}'s L1/L2 but not its L3"
                        );
                    }
                }
            }
        }
    }

    /// Timing sanity: every data access costs at least the L1 latency
    /// and at most DRAM + every snoop overhead.
    #[test]
    fn access_latency_bounds(
        ops in prop::collection::vec((any::<bool>(), any::<bool>(), 0u64..512), 1..200)
    ) {
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let max_latency = 640 + 90 + 80 + 60 + 150 + 25; // dram + all snoops + writeback
        let mut mem = MemorySystem::new(cfg).unwrap();
        for (is_arm, is_write, line) in ops {
            let domain = if is_arm { DomainId::ARM } else { DomainId::X86 };
            let access = if is_write { Access::Write } else { Access::Read };
            let out = mem.access(
                domain,
                PhysAddr::new((5u64 << 30) + line * 64),
                access,
                AccessKind::Data,
            );
            prop_assert!(out.cycles.raw() >= 4, "below L1 latency: {}", out.cycles);
            prop_assert!(
                out.cycles.raw() <= max_latency,
                "latency {} exceeds the physical maximum {max_latency}",
                out.cycles
            );
        }
    }
}

proptest! {
    /// The red-black tree agrees with `BTreeMap` on arbitrary op
    /// sequences, while keeping its colour/height invariants.
    #[test]
    fn rbtree_matches_btreemap(
        ops in prop::collection::vec((0u8..4, 0u64..128, any::<u64>()), 1..200)
    ) {
        use stramash_repro::kernel::rbtree::RbTree;
        let mut tree: RbTree<u64, u64> = RbTree::new();
        let mut model = std::collections::BTreeMap::new();
        for (op, key, value) in ops {
            match op {
                0 | 1 => prop_assert_eq!(tree.insert(key, value), model.insert(key, value)),
                2 => prop_assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => {
                    prop_assert_eq!(tree.get(&key), model.get(&key));
                    let f = tree.floor(&key).map(|(k, v)| (*k, *v));
                    let mf = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                    prop_assert_eq!(f, mf);
                }
            }
        }
        tree.assert_invariants();
        let a: Vec<_> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(a, b);
    }

    /// The buddy allocator conserves pages and never overlaps blocks
    /// under arbitrary alloc/free interleavings.
    #[test]
    fn buddy_conserves_and_never_overlaps(
        ops in prop::collection::vec((any::<bool>(), 0u32..4), 1..150),
        pages in 16u64..200
    ) {
        use stramash_repro::kernel::buddy::BuddyAllocator;
        let mut buddy = BuddyAllocator::new(PhysAddr::new(0x100_0000), pages * 4096);
        let mut live: Vec<(PhysAddr, u32)> = Vec::new();
        for (is_alloc, order) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(blk) = buddy.alloc(order) {
                    prop_assert!(blk.is_aligned((4096u64) << order));
                    for &(other, oo) in &live {
                        let (a0, a1) = (blk.raw(), blk.raw() + (4096u64 << order));
                        let (b0, b1) = (other.raw(), other.raw() + (4096u64 << oo));
                        prop_assert!(a1 <= b0 || b1 <= a0, "overlapping blocks");
                    }
                    live.push((blk, order));
                }
            } else {
                let (blk, _) = live.swap_remove(live.len() / 2);
                buddy.free(blk).unwrap();
            }
            buddy.assert_invariants();
        }
        let allocated: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
        prop_assert_eq!(buddy.allocated_pages(), allocated);
    }
}
