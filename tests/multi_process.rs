//! Multiple processes on one platform: isolation between address
//! spaces, independent migration, and per-process accounting.

use stramash_repro::kernel::addr::PAGE_SIZE;
use stramash_repro::kernel::system::OsSystem;
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// Two processes share VA numbers but never data: the same virtual
/// address maps to different frames per process.
#[test]
fn address_spaces_are_isolated() {
    for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let a = sys.spawn(DomainId::X86).unwrap();
        let b = sys.spawn(DomainId::ARM).unwrap();
        let va_a = sys.mmap(a, 4 * PAGE_SIZE, VmaProt::rw()).unwrap();
        let va_b = sys.mmap(b, 4 * PAGE_SIZE, VmaProt::rw()).unwrap();
        assert_eq!(va_a, va_b, "both processes use the same mmap base VA");
        sys.store_u64(a, va_a, 0xAAAA).unwrap();
        sys.store_u64(b, va_b, 0xBBBB).unwrap();
        assert_eq!(sys.load_u64(a, va_a).unwrap(), 0xAAAA);
        assert_eq!(sys.load_u64(b, va_b).unwrap(), 0xBBBB, "{kind:?}: cross-process bleed");
        // Their translations resolve to different physical frames.
        let (pa_a, _) = sys.translate(a, va_a, false).unwrap();
        let (pa_b, _) = sys.translate(b, va_b, false).unwrap();
        assert_ne!(pa_a, pa_b);
    }
}

/// Processes migrate independently: one can live on each kernel, with
/// interleaved accesses staying coherent.
#[test]
fn independent_migration_and_interleaving() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let a = sys.spawn(DomainId::X86).unwrap();
    let b = sys.spawn(DomainId::X86).unwrap();
    let va = sys.mmap(a, 8 * PAGE_SIZE, VmaProt::rw()).unwrap();
    let vb = sys.mmap(b, 8 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.migrate(a, DomainId::ARM).unwrap();
    assert_eq!(sys.current_domain(a).unwrap(), DomainId::ARM);
    assert_eq!(sys.current_domain(b).unwrap(), DomainId::X86);
    for i in 0..16u64 {
        sys.store_u64(a, va.offset(i * 64), i).unwrap();
        sys.store_u64(b, vb.offset(i * 64), i * 2).unwrap();
    }
    sys.migrate(a, DomainId::X86).unwrap();
    sys.migrate(b, DomainId::ARM).unwrap();
    for i in 0..16u64 {
        assert_eq!(sys.load_u64(a, va.offset(i * 64)).unwrap(), i);
        assert_eq!(sys.load_u64(b, vb.offset(i * 64)).unwrap(), i * 2);
    }
}

/// Two NPB kernels run back-to-back as separate processes on one booted
/// platform; both verify, and the second is unaffected by the first's
/// leftover cache/kernel state.
#[test]
fn sequential_workloads_on_one_platform() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let p1 = sys.spawn(DomainId::X86).unwrap();
    let out1 = run_npb(NpbKind::Is, &mut sys, p1, Class::Tiny, true).unwrap();
    assert!(out1.verified);
    let p2 = sys.spawn(DomainId::X86).unwrap();
    let out2 = run_npb(NpbKind::Cg, &mut sys, p2, Class::Tiny, true).unwrap();
    assert!(out2.verified);
    // Teardown of the first process releases its frames without
    // touching the second's.
    if let Some(stra) = sys.as_stramash_mut() {
        let freed = stra.exit(p1).unwrap();
        assert!(freed.iter().sum::<u64>() > 0);
    }
    // p2's address space still works after p1's teardown.
    let probe = sys.mmap(p2, PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(p2, probe, 0xCAFE).unwrap();
    assert_eq!(sys.load_u64(p2, probe).unwrap(), 0xCAFE);
}

/// The perf+icount Chrome-trace export works on a real migrating run.
#[test]
fn chrome_trace_from_real_run() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, true).unwrap();
    let json = sys.base().perf.to_chrome_trace(2_100_000_000);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("migrate x86->arm"));
    assert!(json.contains(r#""ph":"X""#));
    // Both domain tracks appear.
    assert!(json.contains(r#""tid":1"#) && json.contains(r#""tid":2"#));
}
