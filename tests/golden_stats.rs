//! Golden-stats regression test for the simulated-memory hot path.
//!
//! A fixed-seed NPB IS run plus a KV-store run, for all four
//! [`SystemKind`]s, pinning the **exact** simulated runtime, per-level
//! cache hit counters, memory-access counts and message totals. The
//! simulator's host-side fast paths (set masking, MRU probe, last-line
//! hit, streaming access) must never change simulated timing by even
//! one cycle — any future hot-path change that drifts these numbers
//! fails tier-1 here.
//!
//! The same workload is also run with `set_fast_paths(false)` (the
//! reference slow paths) and with `set_batching(false)` (scalar
//! client ops instead of translation sessions + bulk cache access) and
//! must produce a byte-identical fingerprint, proving the fast paths
//! and the batched pipeline are interchangeable with the reference.
//!
//! To regenerate the goldens after an *intentional* timing-model change:
//! `cargo test --test golden_stats -- --ignored --nocapture print_goldens`

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::{EpochPolicy, WideReplay};
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// Everything the hot path is allowed to influence, captured exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    /// Total simulated runtime in cycles after NPB IS + KV.
    runtime: u64,
    /// Cross-kernel messages sent.
    messages: u64,
    /// KV functional checksum (data integrity, not timing).
    kv_checksum: u64,
    /// Per-domain `[l1i.accesses, l1i.hits, l1d.accesses, l1d.hits,
    /// l2.accesses, l2.hits, l3.accesses, l3.hits, mem_accesses]`.
    levels: [[u64; 9]; 2],
    /// Per-domain `[tlb_hits, tlb_misses]` — the §6.4 software-TLB
    /// counters, which the translation sessions must reproduce exactly.
    tlb: [[u64; 2]; 2],
}

/// Runs the fixed workload on a fresh system and captures the stats.
fn fingerprint(kind: SystemKind, fast_paths: bool, batching: bool) -> Fingerprint {
    fingerprint_epochs(kind, fast_paths, batching, false)
}

/// As [`fingerprint`], optionally forcing wide epoch-parallel replay
/// (otherwise the policy is pinned off, regardless of the process
/// environment).
fn fingerprint_epochs(
    kind: SystemKind,
    fast_paths: bool,
    batching: bool,
    forced_wide_epochs: bool,
) -> Fingerprint {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    sys.base_mut().set_epoch_policy(if forced_wide_epochs {
        EpochPolicy { enabled: true, min_lane_entries: 64, wide: WideReplay::Force }
    } else {
        EpochPolicy::default()
    });
    sys.base_mut().mem.set_fast_paths(fast_paths);
    sys.base_mut().set_batching(batching);
    let pid = sys.spawn(DomainId::X86).unwrap();
    let npb = run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, kind.migrates()).unwrap();
    assert!(npb.verified, "{kind}: NPB IS failed verification");
    let kv = run_kv(&mut sys, KvOp::Set, 500, 64).unwrap();
    let levels = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [
            s.l1i.accesses,
            s.l1i.hits,
            s.l1d.accesses,
            s.l1d.hits,
            s.l2.accesses,
            s.l2.hits,
            s.l3.accesses,
            s.l3.hits,
            s.mem_accesses,
        ]
    });
    let tlb = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [s.tlb_hits, s.tlb_misses]
    });
    Fingerprint {
        runtime: sys.runtime().raw(),
        messages: sys.base().msg.counters().total(),
        kv_checksum: kv.checksum,
        levels,
        tlb,
    }
}

/// The recorded goldens (HardwareModel::Shared, NPB IS Tiny + 500 KV
/// sets of 64 B payloads).
fn golden(kind: SystemKind) -> Fingerprint {
    match kind {
        SystemKind::Vanilla => Fingerprint {
            runtime: 5_970_538,
            messages: 1000,
            kv_checksum: 0xf7f7_d41e_5183_3d65,
            levels: [
                [681, 169, 30251, 26076, 4687, 1261, 3426, 0, 30251],
                [0, 0, 0, 0, 0, 0, 0, 0, 0],
            ],
            tlb: [[24_406, 24], [0, 0]],
        },
        SystemKind::PopcornTcp => Fingerprint {
            runtime: 86_187_952,
            messages: 1078,
            kv_checksum: 0xf7f7_d41e_5183_3d65,
            levels: [
                [218, 25, 4529, 3076, 1646, 0, 1646, 0, 4529],
                [487, 5, 24976, 22404, 3054, 1152, 1902, 0, 24976],
            ],
            tlb: [[2_581, 9], [21_812, 28]],
        },
        SystemKind::PopcornShm => Fingerprint {
            runtime: 11_227_003,
            messages: 1078,
            kv_checksum: 0xf7f7_d41e_5183_3d65,
            levels: [
                [218, 25, 8963, 3599, 5557, 15, 5542, 0, 8963],
                [487, 5, 29410, 22649, 7243, 1373, 5870, 0, 29410],
            ],
            tlb: [[2_581, 9], [21_812, 28]],
        },
        SystemKind::Stramash => Fingerprint {
            runtime: 8_321_804,
            messages: 1010,
            kv_checksum: 0xf7f7_d41e_5183_3d65,
            levels: [
                [218, 25, 5367, 2889, 2671, 0, 2671, 0, 5367],
                [487, 5, 26136, 21130, 5488, 1466, 4022, 0, 26136],
            ],
            tlb: [[2_581, 9], [21_813, 27]],
        },
    }
}

#[test]
fn simulated_timing_matches_recorded_goldens() {
    for kind in SystemKind::ALL {
        let got = fingerprint(kind, true, true);
        assert_eq!(got, golden(kind), "{kind}: simulated timing drifted from the golden record");
    }
}

#[test]
fn fast_paths_do_not_change_a_single_cycle() {
    for kind in SystemKind::ALL {
        let fast = fingerprint(kind, true, true);
        let slow = fingerprint(kind, false, true);
        assert_eq!(fast, slow, "{kind}: fast paths must be cycle-identical to the reference");
    }
}

#[test]
fn batched_path_is_cycle_identical_to_scalar() {
    // The batched pipeline (translation sessions + bulk cache access +
    // vectorized NPB loops) against scalar client ops, on fast and on
    // reference memory paths: four host configurations, one simulated
    // truth.
    for kind in SystemKind::ALL {
        let batched = fingerprint(kind, true, true);
        let scalar = fingerprint(kind, true, false);
        assert_eq!(batched, scalar, "{kind}: batching must be cycle-identical to scalar ops");
        let scalar_ref = fingerprint(kind, false, false);
        assert_eq!(batched, scalar_ref, "{kind}: batching must match the scalar reference path");
    }
}

#[test]
fn plan_segments_under_forced_wide_epochs_match_goldens() {
    // The IS ranking loops now run as data-dependent plan segments
    // (`plan_map_indexed`); stacking forced-wide epoch replay on top of
    // them — and on top of the reference memory paths — must still
    // reproduce the exact golden record, cycle for cycle.
    for kind in SystemKind::ALL {
        let wide = fingerprint_epochs(kind, true, true, true);
        assert_eq!(wide, golden(kind), "{kind}: forced-wide epochs drifted from the goldens");
        let wide_slow = fingerprint_epochs(kind, false, true, true);
        assert_eq!(
            wide_slow,
            golden(kind),
            "{kind}: forced-wide epochs over reference paths drifted from the goldens"
        );
    }
}

/// Captures what the serving scenario is allowed to influence: total
/// simulated runtime, cross-kernel message totals, and the folded run
/// fingerprint of every per-request latency.
fn serve_fingerprint(kind: SystemKind) -> (u64, u64, u64) {
    use stramash_repro::workloads::serve::{run_serve, ServeConfig};
    let cfg = ServeConfig {
        workers: 4,
        connections: 16,
        window: 4,
        requests: 300,
        offered_load: 8.0,
        keyspace: 128,
        ..ServeConfig::default()
    };
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    let r = run_serve(&mut sys, &cfg).unwrap();
    assert_eq!(r.completed, cfg.requests, "{kind}: every request must complete");
    (sys.runtime().raw(), sys.base().msg.counters().total(), r.fingerprint)
}

/// The recorded serving goldens — `(runtime, messages, fingerprint)`
/// for the fixed [`serve_fingerprint`] configuration.
fn serve_golden(kind: SystemKind) -> (u64, u64, u64) {
    match kind {
        SystemKind::Vanilla => (3_900_732, 600, 0x0dc7_532d_a039_17e9),
        SystemKind::PopcornTcp => (50_942_188, 640, 0xa3c5_042b_6715_0e7f),
        SystemKind::PopcornShm => (6_002_505, 640, 0x977b_21b8_90d2_da73),
        SystemKind::Stramash => (4_870_418, 608, 0x380f_3e1d_d270_ef03),
    }
}

#[test]
fn serving_scenario_matches_recorded_goldens() {
    for kind in SystemKind::ALL {
        assert_eq!(
            serve_fingerprint(kind),
            serve_golden(kind),
            "{kind}: serving timing or messaging drifted from the golden record"
        );
    }
}

/// Regeneration helper — prints the current fingerprints in the exact
/// shape of [`golden`].
#[test]
#[ignore = "golden regeneration helper, run manually"]
fn print_goldens() {
    for kind in SystemKind::ALL {
        let f = fingerprint(kind, true, true);
        println!("SystemKind::{kind:?} => Fingerprint {{");
        println!("    runtime: {},", f.runtime);
        println!("    messages: {},", f.messages);
        println!("    kv_checksum: {:#x},", f.kv_checksum);
        println!("    levels: [{:?}, {:?}],", f.levels[0], f.levels[1]);
        println!("    tlb: [{:?}, {:?}],", f.tlb[0], f.tlb[1]);
        println!("}},");
    }
    for kind in SystemKind::ALL {
        let (runtime, messages, fp) = serve_fingerprint(kind);
        println!("SystemKind::{kind:?} => ({runtime}, {messages}, {fp:#018x}),");
    }
}
