//! Translation-session invalidation: the batched pipeline's safety
//! contract.
//!
//! An [`AccessSession`] caches page→frame translations copied from the
//! live software TLB. Every event that can stale a TLB entry —
//! `munmap`, `mprotect`, migration, DSM ownership transfers — bumps the
//! TLB's generation counter, and the session drops everything at the
//! next `session_begin` (or after any in-batch fault, which resyncs
//! inside `session_translate`). These tests pin the observable
//! guarantees: no stale frame is ever readable, downgraded protections
//! bite immediately, and a migration-heavy batched workload stays
//! cycle-identical to its scalar twin.

use stramash_repro::kernel::addr::PAGE_SIZE;
use stramash_repro::kernel::session::AccessSession;
use stramash_repro::kernel::system::{OsError, OsSystem};
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::sim::{EpochPolicy, WideReplay};
use stramash_repro::workloads::client::MemoryClient;
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

#[test]
fn munmap_invalidates_a_live_session() {
    let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 2 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, buf, 0xfeed).unwrap();

    let mut session = AccessSession::new(pid);
    sys.session_begin(&mut session).unwrap();
    let (pa, _) = sys.session_translate(&mut session, buf, false).unwrap();
    // The session now holds the translation: a repeat is a session hit
    // (zero translation cycles) resolving to the same frame.
    let (pa2, cyc) = sys.session_translate(&mut session, buf, false).unwrap();
    assert_eq!(pa, pa2);
    assert_eq!(cyc, Cycles::ZERO);

    sys.munmap(pid, buf).unwrap();

    // Revalidation notices the generation bump and drops the cache;
    // translation now faults instead of serving the stale frame.
    sys.session_begin(&mut session).unwrap();
    assert!(matches!(
        sys.session_translate(&mut session, buf, false),
        Err(OsError::Segfault { .. })
    ));
}

#[test]
fn mprotect_downgrade_blocks_batched_writes() {
    let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, buf, 77).unwrap();

    let mut session = AccessSession::new(pid);
    sys.session_begin(&mut session).unwrap();
    // Cache a writable translation.
    sys.session_translate(&mut session, buf, true).unwrap();

    sys.mprotect(pid, buf, VmaProt::ro()).unwrap();

    sys.session_begin(&mut session).unwrap();
    // Writes are now refused — the cached writable entry is gone.
    assert!(matches!(
        sys.session_translate(&mut session, buf, true),
        Err(OsError::PermissionDenied { .. })
    ));
    // Reads still work and see the value written before the downgrade.
    sys.session_translate(&mut session, buf, false).unwrap();
    assert_eq!(sys.load_u64(pid, buf).unwrap(), 77);
}

#[test]
fn migration_resyncs_the_session_domain() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 2 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, buf, 0xabcd).unwrap();

    let mut session = AccessSession::new(pid);
    sys.session_begin(&mut session).unwrap();
    assert_eq!(session.domain(), DomainId::X86);
    sys.session_translate(&mut session, buf, false).unwrap();

    sys.migrate(pid, DomainId::ARM).unwrap();

    // The next batch adopts the new domain and translates through the
    // remote kernel's page table; the data is still reachable.
    sys.session_begin(&mut session).unwrap();
    assert_eq!(session.domain(), DomainId::ARM);
    sys.session_translate(&mut session, buf, false).unwrap();
    assert_eq!(sys.load_u64(pid, buf).unwrap(), 0xabcd);
}

/// A migration-heavy read-modify-write sweep through the client API:
/// four migrations with a batch scope re-opened after each one.
fn migration_sweep(kind: SystemKind, batching: bool) -> (u64, u64) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    sys.base_mut().set_batching(batching);
    let pid = sys.spawn(DomainId::X86).unwrap();
    let mut c = MemoryClient::new(&mut sys, pid);
    let a = c.alloc_u64(1024).unwrap();
    {
        let mut s = c.batch().unwrap();
        let vals: Vec<u64> = (0..1024).map(|i| i * 3 + 1).collect();
        s.st_u64_slice(a, 0, &vals, 4).unwrap();
    }
    let mut acc = 0u64;
    for round in 0..4u64 {
        let to = if round % 2 == 0 { DomainId::ARM } else { DomainId::X86 };
        c.migrate(to).unwrap();
        let mut s = c.batch().unwrap();
        for i in 0..1024 {
            let v = s.ld_u64(a, i).unwrap();
            s.st_u64(a, i, v + 1).unwrap();
            acc = acc.wrapping_add(v);
            s.work(3).unwrap();
        }
    }
    c.flush_work().unwrap();
    (acc, sys.runtime().raw())
}

#[test]
fn batched_migration_sweep_is_cycle_identical_to_scalar() {
    for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
        let (batched_acc, batched_runtime) = migration_sweep(kind, true);
        let (scalar_acc, scalar_runtime) = migration_sweep(kind, false);
        assert_eq!(batched_acc, scalar_acc, "{kind}: values must match");
        assert_eq!(
            batched_runtime, scalar_runtime,
            "{kind}: migration-heavy batching must not move simulated time"
        );
    }
}

/// Regression for the epoch/session-generation interaction: a TLB
/// shootdown issued while an epoch is active (here, an `mprotect`
/// downgrade during domain A's lane) must be observed by domain B's
/// cached session *immediately* — the protection change suspend-wraps
/// the epoch — not only after the boundary replay. Ran both ways and
/// compared, so the epoch machinery cannot even shift the timing.
fn shootdown_mid_epoch(epochs: bool) -> (bool, u64, u64) {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    // Pin the policy both ways so the serial leg stays serial even in
    // the CI job that exports STRAMASH_EPOCH_PARALLEL=1. Forced wide so
    // the epoch actually opens on a single-core host.
    sys.base_mut().set_epoch_policy(EpochPolicy {
        enabled: epochs,
        min_lane_entries: 16,
        wide: WideReplay::Force,
    });
    let pid_a = sys.spawn(DomainId::X86).unwrap();
    let pid_b = sys.spawn(DomainId::ARM).unwrap();
    let buf = sys.mmap(pid_b, 2 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid_b, buf, 0x5eed).unwrap();
    let scratch = sys.mmap(pid_a, PAGE_SIZE, VmaProt::rw()).unwrap();

    let opened = sys.epoch_open();
    assert_eq!(opened, epochs, "epoch must open exactly when the policy allows it");
    // Domain B caches a *writable* translation inside the epoch.
    let mut session = AccessSession::new(pid_b);
    sys.session_begin(&mut session).unwrap();
    sys.session_translate(&mut session, buf, true).unwrap();
    // Domain A's lane defers some timed work, then issues the
    // shootdown: downgrade B's page to read-only.
    sys.store_u64(pid_a, scratch, 1).unwrap();
    sys.mprotect(pid_b, buf, VmaProt::ro()).unwrap();
    // B revalidates mid-epoch: the cached writable entry must already
    // be dead, and the write must be refused exactly as on the
    // epoch-off machine.
    sys.session_begin(&mut session).unwrap();
    let refused = matches!(
        sys.session_translate(&mut session, buf, true),
        Err(OsError::PermissionDenied { .. })
    );
    // Reads still resolve through the fresh translation.
    sys.session_translate(&mut session, buf, false).unwrap();
    if opened {
        sys.epoch_close();
    }
    let value = sys.load_u64(pid_b, buf).unwrap();
    (refused, value, sys.runtime().raw())
}

#[test]
fn mid_epoch_shootdown_invalidates_peer_session_immediately() {
    let (refused_off, value_off, runtime_off) = shootdown_mid_epoch(false);
    let (refused_on, value_on, runtime_on) = shootdown_mid_epoch(true);
    assert!(refused_off, "baseline: downgrade must refuse the cached writable entry");
    assert!(refused_on, "under epochs: the shootdown must not be observed late");
    assert_eq!(value_on, value_off, "data must be unaffected by epoch execution");
    assert_eq!(value_off, 0x5eed);
    assert_eq!(runtime_on, runtime_off, "epoch suspend-wrap must not move simulated time");
}
