//! Translation-session invalidation: the batched pipeline's safety
//! contract.
//!
//! An [`AccessSession`] caches page→frame translations copied from the
//! live software TLB. Every event that can stale a TLB entry —
//! `munmap`, `mprotect`, migration, DSM ownership transfers — bumps the
//! TLB's generation counter, and the session drops everything at the
//! next `session_begin` (or after any in-batch fault, which resyncs
//! inside `session_translate`). These tests pin the observable
//! guarantees: no stale frame is ever readable, downgraded protections
//! bite immediately, and a migration-heavy batched workload stays
//! cycle-identical to its scalar twin.

use stramash_repro::kernel::addr::PAGE_SIZE;
use stramash_repro::kernel::session::AccessSession;
use stramash_repro::kernel::system::{OsError, OsSystem};
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::workloads::client::MemoryClient;
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

#[test]
fn munmap_invalidates_a_live_session() {
    let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 2 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, buf, 0xfeed).unwrap();

    let mut session = AccessSession::new(pid);
    sys.session_begin(&mut session).unwrap();
    let (pa, _) = sys.session_translate(&mut session, buf, false).unwrap();
    // The session now holds the translation: a repeat is a session hit
    // (zero translation cycles) resolving to the same frame.
    let (pa2, cyc) = sys.session_translate(&mut session, buf, false).unwrap();
    assert_eq!(pa, pa2);
    assert_eq!(cyc, Cycles::ZERO);

    sys.munmap(pid, buf).unwrap();

    // Revalidation notices the generation bump and drops the cache;
    // translation now faults instead of serving the stale frame.
    sys.session_begin(&mut session).unwrap();
    assert!(matches!(
        sys.session_translate(&mut session, buf, false),
        Err(OsError::Segfault { .. })
    ));
}

#[test]
fn mprotect_downgrade_blocks_batched_writes() {
    let mut sys = TargetSystem::build(SystemKind::Vanilla, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, buf, 77).unwrap();

    let mut session = AccessSession::new(pid);
    sys.session_begin(&mut session).unwrap();
    // Cache a writable translation.
    sys.session_translate(&mut session, buf, true).unwrap();

    sys.mprotect(pid, buf, VmaProt::ro()).unwrap();

    sys.session_begin(&mut session).unwrap();
    // Writes are now refused — the cached writable entry is gone.
    assert!(matches!(
        sys.session_translate(&mut session, buf, true),
        Err(OsError::PermissionDenied { .. })
    ));
    // Reads still work and see the value written before the downgrade.
    sys.session_translate(&mut session, buf, false).unwrap();
    assert_eq!(sys.load_u64(pid, buf).unwrap(), 77);
}

#[test]
fn migration_resyncs_the_session_domain() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 2 * PAGE_SIZE, VmaProt::rw()).unwrap();
    sys.store_u64(pid, buf, 0xabcd).unwrap();

    let mut session = AccessSession::new(pid);
    sys.session_begin(&mut session).unwrap();
    assert_eq!(session.domain(), DomainId::X86);
    sys.session_translate(&mut session, buf, false).unwrap();

    sys.migrate(pid, DomainId::ARM).unwrap();

    // The next batch adopts the new domain and translates through the
    // remote kernel's page table; the data is still reachable.
    sys.session_begin(&mut session).unwrap();
    assert_eq!(session.domain(), DomainId::ARM);
    sys.session_translate(&mut session, buf, false).unwrap();
    assert_eq!(sys.load_u64(pid, buf).unwrap(), 0xabcd);
}

/// A migration-heavy read-modify-write sweep through the client API:
/// four migrations with a batch scope re-opened after each one.
fn migration_sweep(kind: SystemKind, batching: bool) -> (u64, u64) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    sys.base_mut().set_batching(batching);
    let pid = sys.spawn(DomainId::X86).unwrap();
    let mut c = MemoryClient::new(&mut sys, pid);
    let a = c.alloc_u64(1024).unwrap();
    {
        let mut s = c.batch().unwrap();
        let vals: Vec<u64> = (0..1024).map(|i| i * 3 + 1).collect();
        s.st_u64_slice(a, 0, &vals, 4).unwrap();
    }
    let mut acc = 0u64;
    for round in 0..4u64 {
        let to = if round % 2 == 0 { DomainId::ARM } else { DomainId::X86 };
        c.migrate(to).unwrap();
        let mut s = c.batch().unwrap();
        for i in 0..1024 {
            let v = s.ld_u64(a, i).unwrap();
            s.st_u64(a, i, v + 1).unwrap();
            acc = acc.wrapping_add(v);
            s.work(3).unwrap();
        }
    }
    c.flush_work().unwrap();
    (acc, sys.runtime().raw())
}

#[test]
fn batched_migration_sweep_is_cycle_identical_to_scalar() {
    for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
        let (batched_acc, batched_runtime) = migration_sweep(kind, true);
        let (scalar_acc, scalar_runtime) = migration_sweep(kind, false);
        assert_eq!(batched_acc, scalar_acc, "{kind}: values must match");
        assert_eq!(
            batched_runtime, scalar_runtime,
            "{kind}: migration-heavy batching must not move simulated time"
        );
    }
}
