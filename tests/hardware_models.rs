//! Hardware-model semantics end to end (§8.1/§9.2.1): which designs are
//! sensitive to the Figure 3 memory configuration, and which are not.

use stramash_repro::prelude::*;
use stramash_repro::workloads::driver::{run_benchmark, Configuration};
use stramash_repro::workloads::micro::{memory_access, AccessScenario};
use stramash_repro::workloads::npb::{Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// §8.2: Popcorn-TCP "performs the same independently of the hardware
/// model" — it never touches shared memory.
#[test]
fn tcp_is_hardware_model_independent() {
    let mut runtimes = Vec::new();
    for model in HardwareModel::ALL {
        let r = run_benchmark(
            Configuration { kind: SystemKind::PopcornTcp, model },
            NpbKind::Is,
            Class::Tiny,
        )
        .unwrap();
        assert!(r.outcome.verified);
        runtimes.push(r.runtime.raw());
    }
    let min = *runtimes.iter().min().unwrap() as f64;
    let max = *runtimes.iter().max().unwrap() as f64;
    assert!(
        max / min < 1.02,
        "TCP runtimes must be (nearly) model-independent: {runtimes:?}"
    );
}

/// §9.2.1: Popcorn-SHM's *warm* accesses are model-insensitive because
/// "SHM always replicates the page; the remote memory access overhead
/// is minimal".
#[test]
fn popcorn_warm_access_is_model_insensitive() {
    const BYTES: u64 = 512 << 10;
    let mut costs = Vec::new();
    for model in HardwareModel::ALL {
        let mut sys = TargetSystem::build(SystemKind::PopcornShm, model).unwrap();
        let r = memory_access(&mut sys, AccessScenario::RemoteAccessOriginNoCold, BYTES).unwrap();
        costs.push(r.measured.raw());
    }
    let min = *costs.iter().min().unwrap() as f64;
    let max = *costs.iter().max().unwrap() as f64;
    assert!(
        max / min < 1.10,
        "warm DSM accesses should barely feel the model: {costs:?}"
    );
}

/// Stramash *is* model-sensitive: Fully-Shared beats Shared and
/// Separated because it eliminates remote memory entirely.
#[test]
fn stramash_fully_shared_is_its_fastest_model() {
    let mut by_model = Vec::new();
    for model in HardwareModel::ALL {
        let r = run_benchmark(
            Configuration { kind: SystemKind::Stramash, model },
            NpbKind::Is,
            Class::Tiny,
        )
        .unwrap();
        assert!(r.outcome.verified);
        by_model.push((model, r.runtime.raw(), r.remote_hits));
    }
    let fully = by_model.iter().find(|(m, ..)| *m == HardwareModel::FullyShared).unwrap();
    for (model, runtime, remote_hits) in &by_model {
        if *model != HardwareModel::FullyShared {
            assert!(fully.1 < *runtime, "Fully-Shared must be fastest: {by_model:?}");
            assert!(*remote_hits > 0, "{model} must incur remote DRAM hits");
        }
    }
    assert_eq!(fully.2, 0, "Fully-Shared has no remote memory at all");
}

/// Under the Separated model, the message ring is x86-local and
/// Arm-remote (§8.2) — sends from Arm cost more than sends from x86.
#[test]
fn separated_ring_placement_is_asymmetric() {
    use stramash_repro::kernel::msg::{Message, MsgType};
    use stramash_repro::kernel::system::OsSystem;
    let mut sys = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Separated).unwrap();
    let base = sys.base_mut();
    let msg = Message::page(MsgType::PageResponse);
    let from_x86 = {
        let (m, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
        m.send(mem, ipi, DomainId::X86, msg)
    };
    base.mem.flush_caches();
    let from_arm = {
        let (m, mem, ipi) = (&mut base.msg, &mut base.mem, &mut base.ipi);
        m.send(mem, ipi, DomainId::ARM, msg)
    };
    assert!(
        from_arm.raw() > from_x86.raw() + 10_000,
        "Arm writes the ring remotely: {from_arm} vs {from_x86}"
    );
}
