//! Determinism contract for epoch-parallel domain execution.
//!
//! The deferred-epoch engine (DESIGN.md §11) batches every timed path
//! inside an epoch into a per-domain lane and replays the lanes at the
//! epoch boundary — serially, or on two host threads when the lanes are
//! long and provably disjoint. Either way the replay must be
//! *bit-identical* to the never-deferred execution. Pinned here, on the
//! `golden_stats.rs` fixed workload (NPB IS Tiny + 500 KV sets) and the
//! two-thread pair workload, for all four [`SystemKind`]s:
//!
//! 1. Forcing epochs on leaves the golden fingerprint (runtime, cache
//!    levels, TLB counters, message totals, KV checksum) untouched.
//! 2. The full trace event stream — not just the totals — is identical
//!    between epoch-off and epoch-on runs.
//! 3. The pair workload (the shape whose boundary replay actually goes
//!    wide) agrees in checksum bits, domain clocks, messages, and trace
//!    stream, while the epoch-on run demonstrably parallelises.
//! 4. An active [`FaultPlan`] (message drops, IPI loss, allocator
//!    exhaustion) changes nothing about that equivalence: faults fire
//!    at the same points and recover identically under epochs.
//! 5. A checkpoint taken mid-run under epoch-parallel execution and
//!    restored into a fresh machine resumes bit-identically — the
//!    compiled access plans revalidate rather than replaying stale
//!    translations.

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::rng::SimRng;
use stramash_repro::sim::trace::{shared_tracer, EventClass, TraceEvent};
use stramash_repro::sim::{EpochPolicy, FaultPlan, WideReplay};
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::pair::{PairConfig, PairOutcome, PairRun};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};
use stramash_repro::workloads::{ColSpec, IndexedPlan, MemoryClient, PlanCol};

/// Lossless ring for the fixed workload.
const RING_CAPACITY: usize = 1 << 20;

/// A policy whose lane threshold the fixed workloads actually cross,
/// with the two-thread replay forced on so the test exercises the
/// parallel executor even on a single-core host.
fn forced() -> EpochPolicy {
    EpochPolicy { enabled: true, min_lane_entries: 64, wide: WideReplay::Force }
}

/// The golden-stats fingerprint shape (duplicated; integration tests
/// cannot share items).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    runtime: u64,
    messages: u64,
    kv_checksum: u64,
    levels: [[u64; 9]; 2],
    tlb: [[u64; 2]; 2],
}

fn capture(sys: &TargetSystem, kv_checksum: u64) -> Fingerprint {
    let levels = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [
            s.l1i.accesses,
            s.l1i.hits,
            s.l1d.accesses,
            s.l1d.hits,
            s.l2.accesses,
            s.l2.hits,
            s.l3.accesses,
            s.l3.hits,
            s.mem_accesses,
        ]
    });
    let tlb = [DomainId::X86, DomainId::ARM].map(|d| {
        let s = sys.base().mem.stats(d);
        [s.tlb_hits, s.tlb_misses]
    });
    Fingerprint {
        runtime: sys.runtime().raw(),
        messages: sys.base().msg.counters().total(),
        kv_checksum,
        levels,
        tlb,
    }
}

/// Runs the fixed golden workload under a tracer, with epochs either
/// left off or forced on, optionally under a fault plan.
fn golden_run(
    kind: SystemKind,
    epochs: bool,
    plan: Option<(FaultPlan, u64)>,
) -> (Fingerprint, Vec<TraceEvent>) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    // Pin the policy both ways: the epoch-parallel CI job exports
    // STRAMASH_EPOCH_PARALLEL=1, and the serial leg must stay serial
    // even there.
    sys.base_mut().set_epoch_policy(if epochs { forced() } else { EpochPolicy::default() });
    if let Some((p, seed)) = plan {
        sys.install_fault_plan(p, seed);
    }
    let tracer = shared_tracer(RING_CAPACITY);
    sys.install_tracer(tracer.clone());
    let pid = sys.spawn(DomainId::X86).unwrap();
    let npb = run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, kind.migrates()).unwrap();
    assert!(npb.verified, "{kind}: NPB IS failed verification");
    let kv = run_kv(&mut sys, KvOp::Set, 500, 64).unwrap();
    let fp = capture(&sys, kv.checksum);
    let t = tracer.borrow();
    assert_eq!(t.dropped(), 0, "{kind}: the ring must be lossless for this workload");
    (fp, t.events())
}

/// First-divergence stream comparison.
fn assert_streams_identical(a: &[TraceEvent], b: &[TraceEvent], ctx: &str) {
    if let Some(i) = a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        panic!("{ctx}: streams diverge at event {i}:\n  left:  {:?}\n  right: {:?}", a[i], b[i]);
    }
    assert_eq!(a.len(), b.len(), "{ctx}: one stream is a prefix of the other");
}

#[test]
fn forced_epochs_leave_goldens_and_streams_untouched() {
    for kind in SystemKind::ALL {
        let (off_fp, off_ev) = golden_run(kind, false, None);
        let (on_fp, on_ev) = golden_run(kind, true, None);
        assert_eq!(off_fp, on_fp, "{kind}: epoch execution drifted from the golden fingerprint");
        assert_streams_identical(&off_ev, &on_ev, &format!("{kind}: epoch off vs on"));
    }
}

fn pair_run(
    kind: SystemKind,
    epochs: bool,
) -> (PairOutcome, (u64, u64, u64), Vec<TraceEvent>) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    sys.base_mut().set_epoch_policy(if epochs { forced() } else { EpochPolicy::default() });
    let tracer = shared_tracer(RING_CAPACITY);
    sys.install_tracer(tracer.clone());
    let cfg = PairConfig { elems: 1500, phases: 8, heartbeat: true };
    let mut run = PairRun::setup(&mut sys, cfg).unwrap();
    while !run.done() {
        run.step(&mut sys).unwrap();
    }
    let out = run.finish();
    let base = sys.base();
    let fp = (
        base.timebase.clock(DomainId::X86).cycles().raw(),
        base.timebase.clock(DomainId::ARM).cycles().raw(),
        base.msg.counters().total(),
    );
    let t = tracer.borrow();
    assert_eq!(t.dropped(), 0, "{kind}: the ring must be lossless for this workload");
    (out, fp, t.events())
}

#[test]
fn pair_workload_epoch_parallel_is_bit_identical_and_goes_wide() {
    for kind in SystemKind::ALL {
        let (serial, fs, es) = pair_run(kind, false);
        let (par, fp, ep) = pair_run(kind, true);
        assert_eq!(
            serial.checksum.to_bits(),
            par.checksum.to_bits(),
            "{kind}: epoch-parallel pair run drifted from serial"
        );
        assert_eq!(fs, fp, "{kind}: clocks and messages must not move under epochs");
        assert_streams_identical(&es, &ep, &format!("{kind}: pair serial vs epoch-parallel"));
        assert_eq!(serial.parallel_epochs, 0, "{kind}: the serial leg must not go wide");
        if matches!(kind, SystemKind::Stramash | SystemKind::PopcornShm) {
            // The kinds with long private phases: the boundary replay
            // must actually run both lanes on host threads.
            assert!(
                par.parallel_epochs > 0,
                "{kind}: lanes were long and disjoint; replay must go wide ({} entries)",
                par.epoch_entries,
            );
        }
    }
}

/// How a run drives the client pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Batching off: the scalar per-access loop plan segments must
    /// reproduce exactly.
    Scalar,
    /// Data-dependent plan segments (the default pipeline).
    Batched,
    /// Plan segments over the reference (fast-paths-off) memory model.
    BatchedSlowMem,
    /// Plan segments under forced-wide epoch replay
    /// (`STRAMASH_EPOCH_PARALLEL=1`'s strongest setting).
    BatchedWideEpochs,
}

/// One randomized indexed gather/scatter workload: per domain, a
/// value-dependent histogram (the bucket target is the loaded key) and
/// two gathers through the *same* compiled plan with different index
/// slices — the recompute-per-call property that distinguishes
/// data-dependent segments from dense plans. Both domains run inside
/// one epoch per pass so the wide mode has two lanes to replay.
fn indexed_case(
    kind: SystemKind,
    mode: Mode,
    seed: u64,
) -> (Fingerprint, Vec<TraceEvent>) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    // Pin the policy regardless of the process environment.
    sys.base_mut().set_epoch_policy(match mode {
        Mode::BatchedWideEpochs => forced(),
        _ => EpochPolicy::default(),
    });
    if mode == Mode::Scalar {
        sys.base_mut().set_batching(false);
    }
    if mode == Mode::BatchedSlowMem {
        sys.base_mut().mem.set_fast_paths(false);
    }
    let tracer = shared_tracer(RING_CAPACITY);
    sys.install_tracer(tracer.clone());

    let mut rng = SimRng::new(seed);
    let elems = 300 + rng.gen_range(300);
    let buckets = 24 + rng.gen_range(40);
    let keys_data: Vec<u64> = (0..elems).map(|_| rng.gen_range(buckets)).collect();
    let idx_a: Vec<u64> = (0..elems).map(|_| rng.gen_range(buckets)).collect();
    let idx_b: Vec<u64> = (0..elems).map(|_| rng.gen_range(buckets)).collect();

    let dense = ColSpec::Dense { stride: 1, offset: 0 };
    let bucket = ColSpec::Value { col: 0, offset: 0 };
    let gather = ColSpec::Index { slice: 0, offset: 0 };
    let mut checksum = 0u64;

    struct Lane {
        pid: stramash_repro::kernel::process::Pid,
        keys: stramash_repro::workloads::ArrayU64,
        hist: stramash_repro::workloads::ArrayU64,
        out: stramash_repro::workloads::ArrayU64,
        hist_plan: IndexedPlan,
        gather_plan: IndexedPlan,
    }
    let mut lanes = Vec::new();
    for d in DomainId::ALL {
        let pid = sys.spawn(d).unwrap();
        let mut c = MemoryClient::new(&mut sys, pid);
        let keys = c.alloc_u64(elems).unwrap();
        let hist = c.alloc_u64(buckets).unwrap();
        let out = c.alloc_u64(elems).unwrap();
        {
            let mut s = c.batch().unwrap();
            for (i, &k) in keys_data.iter().enumerate() {
                s.st_u64(keys, i as u64, k).unwrap();
            }
            s.fill_u64(hist, 0, buckets, 0, 2).unwrap();
        }
        lanes.push(Lane {
            pid,
            keys,
            hist,
            out,
            hist_plan: IndexedPlan::new(),
            gather_plan: IndexedPlan::new(),
        });
    }
    for pass in 0..2 {
        // One epoch spans both domains' segments, so the forced-wide
        // mode replays two real lanes at the boundary.
        let opened = sys.epoch_open();
        for lane in &mut lanes {
            let mut c = MemoryClient::new(&mut sys, lane.pid);
            {
                let mut s = c.batch().unwrap();
                s.plan_map_indexed(
                    &mut lane.hist_plan,
                    &[PlanCol::u64(lane.keys, dense), PlanCol::u64(lane.hist, bucket)],
                    &[PlanCol::u64(lane.hist, bucket)],
                    &[],
                    elems,
                    6,
                    |_, rv, wv| wv[0] = rv[1] + 1,
                )
                .unwrap();
                // Same compiled plan, different index slice per pass.
                let idx: &[u64] = if pass == 0 { &idx_a } else { &idx_b };
                s.plan_map_indexed(
                    &mut lane.gather_plan,
                    &[PlanCol::u64(lane.hist, gather)],
                    &[PlanCol::u64(lane.out, dense)],
                    &[idx],
                    elems,
                    4,
                    |i, rv, wv| {
                        wv[0] = rv[0];
                        checksum = checksum.wrapping_mul(1_000_003).wrapping_add(rv[0] ^ i);
                    },
                )
                .unwrap();
            }
            c.flush_work().unwrap();
        }
        if opened {
            sys.epoch_close();
        }
    }
    let fp = capture(&sys, checksum);
    let t = tracer.borrow();
    assert_eq!(t.dropped(), 0, "{kind}: the ring must be lossless for this workload");
    (fp, t.events())
}

/// Per-domain `(retired instructions, charged cycles)` totals — what
/// the `Accounting` event class must conserve when batching coalesces
/// `Charge`/`Retire` funnels.
fn accounting_totals(events: &[TraceEvent]) -> ([u64; 2], [u64; 2]) {
    let mut insns = [0u64; 2];
    let mut charged = [0u64; 2];
    for ev in events {
        match *ev {
            TraceEvent::Retire { domain, insns: n } => insns[domain.index()] += n,
            TraceEvent::Charge { domain, cost } => charged[domain.index()] += cost.raw(),
            _ => {}
        }
    }
    (insns, charged)
}

/// Property: for randomized key/index distributions, data-dependent
/// plan segments are cycle- and trace-identical to the scalar
/// per-access loop — with the tracer on, over the reference memory
/// paths, and under forced-wide epoch replay. Seeds are fixed so any
/// failure replays exactly.
#[test]
fn indexed_plan_segments_match_scalar_for_random_cases() {
    for kind in SystemKind::ALL {
        for seed in [0x1d0_5eed, 0x2d0_5eed, 0x3d0_5eed] {
            let (scalar_fp, scalar_ev) = indexed_case(kind, Mode::Scalar, seed);
            let (batched_fp, batched_ev) = indexed_case(kind, Mode::Batched, seed);
            assert_eq!(
                scalar_fp, batched_fp,
                "{kind}/{seed:#x}: plan segments drifted from the scalar loop"
            );
            // Batching may coalesce Charge/Retire funnels; every other
            // event class must match the scalar stream exactly, and the
            // accounting totals must be conserved.
            for class in EventClass::ALL {
                if class == EventClass::Accounting {
                    continue;
                }
                let lhs: Vec<_> =
                    batched_ev.iter().copied().filter(|e| e.class() == class).collect();
                let rhs: Vec<_> =
                    scalar_ev.iter().copied().filter(|e| e.class() == class).collect();
                assert_streams_identical(
                    &lhs,
                    &rhs,
                    &format!("{kind}/{seed:#x}: segments vs scalar, {class:?}"),
                );
            }
            assert_eq!(
                accounting_totals(&batched_ev),
                accounting_totals(&scalar_ev),
                "{kind}/{seed:#x}: accounting totals drifted"
            );

            // The remaining host modes keep the batched pipeline, so
            // their full streams — accounting included — must be
            // bit-identical to the batched run.
            let (slow_fp, slow_ev) = indexed_case(kind, Mode::BatchedSlowMem, seed);
            assert_eq!(batched_fp, slow_fp, "{kind}/{seed:#x}: reference paths drifted");
            assert_streams_identical(
                &batched_ev,
                &slow_ev,
                &format!("{kind}/{seed:#x}: fast vs reference paths"),
            );
            let (wide_fp, wide_ev) = indexed_case(kind, Mode::BatchedWideEpochs, seed);
            assert_eq!(batched_fp, wide_fp, "{kind}/{seed:#x}: forced-wide epochs drifted");
            assert_streams_identical(
                &batched_ev,
                &wide_ev,
                &format!("{kind}/{seed:#x}: epochs off vs forced-wide"),
            );
        }
    }
}

#[test]
fn fault_plan_fires_identically_under_epochs() {
    // Faults inject at messaging/allocation points, which run between
    // epochs — so a seeded schedule must produce the same recoveries,
    // the same retransmits, and the same fingerprint either way.
    let plan = FaultPlan::none().with_msg_drop(0.08).with_ipi_loss(0.002).with_galloc_exhaust_at(3);
    const SEED: u64 = 0x5eed_ca5e;
    for kind in [SystemKind::PopcornShm, SystemKind::Stramash] {
        let (off_fp, off_ev) = golden_run(kind, false, Some((plan, SEED)));
        let (on_fp, on_ev) = golden_run(kind, true, Some((plan, SEED)));
        assert_eq!(off_fp, on_fp, "{kind}: epochs changed the faulted run's fingerprint");
        assert_streams_identical(&off_ev, &on_ev, &format!("{kind}: faulted, epoch off vs on"));
    }
}

#[test]
fn checkpoint_mid_run_restores_bit_identically_under_epochs() {
    let kind = SystemKind::Stramash;
    let cfg = PairConfig { elems: 1500, phases: 8, heartbeat: true };

    // Branch A: uninterrupted epoch-parallel run, checkpointing at the
    // halfway phase.
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
    sys.base_mut().set_epoch_policy(forced());
    let mut run = PairRun::setup(&mut sys, cfg).unwrap();
    for _ in 0..4 {
        run.step(&mut sys).unwrap();
    }
    let artifact = sys.checkpoint();
    let saved = run.clone();
    while !run.done() {
        run.step(&mut sys).unwrap();
    }
    let want = run.finish();
    let want_clocks = (
        sys.base().timebase.clock(DomainId::X86).cycles().raw(),
        sys.base().timebase.clock(DomainId::ARM).cycles().raw(),
    );

    // Branch B: restore into a fresh machine and finish from the saved
    // host-side state. The compiled plans in `saved` still reference
    // the pre-checkpoint TLB generation; they must revalidate, not
    // replay stale translations.
    let mut fresh = TargetSystem::build_with(kind, sys.config().clone()).unwrap();
    fresh.restore(&artifact).unwrap();
    fresh.base_mut().set_epoch_policy(forced());
    let mut resumed = saved;
    while !resumed.done() {
        resumed.step(&mut fresh).unwrap();
    }
    let got = resumed.finish();
    let got_clocks = (
        fresh.base().timebase.clock(DomainId::X86).cycles().raw(),
        fresh.base().timebase.clock(DomainId::ARM).cycles().raw(),
    );

    assert_eq!(got.checksum.to_bits(), want.checksum.to_bits(), "restored run drifted");
    assert_eq!(got.phases, want.phases);
    assert_eq!(got_clocks, want_clocks, "restored clocks drifted from the uninterrupted run");
}
