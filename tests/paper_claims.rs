//! Fast, assertive reproductions of the paper's headline claims
//! (the benchmark harness regenerates the full tables; these run at
//! test-friendly sizes and check the *shape* of each result).

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::workloads::driver::{run_benchmark, Configuration};
use stramash_repro::workloads::micro::{futex_pingpong, granularity, memory_access, AccessScenario};
use stramash_repro::workloads::npb::{Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

fn config(kind: SystemKind, model: HardwareModel) -> Configuration {
    Configuration { kind, model }
}

/// §1 "Key Results": the fused kernel beats the multiple-kernel OS on
/// the write-intensive NPB benchmark, and shared-memory messaging beats
/// TCP.
#[test]
fn headline_is_speedup_ordering() {
    let vanilla =
        run_benchmark(config(SystemKind::Vanilla, HardwareModel::Shared), NpbKind::Is, Class::Tiny)
            .unwrap();
    let tcp = run_benchmark(
        config(SystemKind::PopcornTcp, HardwareModel::Shared),
        NpbKind::Is,
        Class::Tiny,
    )
    .unwrap();
    let shm = run_benchmark(
        config(SystemKind::PopcornShm, HardwareModel::Shared),
        NpbKind::Is,
        Class::Tiny,
    )
    .unwrap();
    let stra =
        run_benchmark(config(SystemKind::Stramash, HardwareModel::Shared), NpbKind::Is, Class::Tiny)
            .unwrap();
    assert!(vanilla.runtime < stra.runtime, "vanilla is the floor");
    assert!(stra.runtime < shm.runtime, "fused beats multiple-kernel");
    assert!(shm.runtime < tcp.runtime, "SHM messaging beats TCP");
}

/// §9.2.1: Stramash Fully-Shared "closely matches that of the Vanilla
/// case, as it effectively eliminates remote memory access and
/// messaging overheads".
#[test]
fn fully_shared_stramash_approaches_vanilla() {
    // Run at Small class: at Tiny sizes the fixed migration handshakes
    // are not amortised and dominate the comparison.
    let vanilla =
        run_benchmark(config(SystemKind::Vanilla, HardwareModel::Shared), NpbKind::Mg, Class::Small)
            .unwrap();
    let stra = run_benchmark(
        config(SystemKind::Stramash, HardwareModel::FullyShared),
        NpbKind::Mg,
        Class::Small,
    )
    .unwrap();
    let ratio = stra.runtime.raw() as f64 / vanilla.runtime.raw() as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "Fully-Shared Stramash should track Vanilla, got {ratio:.2}x"
    );
}

/// Table 3's shape: the fused design reduces inter-kernel messages by
/// an order of magnitude or more even at tiny problem sizes.
#[test]
fn table3_message_reduction_shape() {
    for kind in NpbKind::ALL {
        let p = run_benchmark(
            config(SystemKind::PopcornShm, HardwareModel::Shared),
            kind,
            Class::Tiny,
        )
        .unwrap();
        let s = run_benchmark(
            config(SystemKind::Stramash, HardwareModel::Shared),
            kind,
            Class::Tiny,
        )
        .unwrap();
        assert!(
            s.messages * 2 <= p.messages,
            "{kind}: Stramash {} msgs vs Popcorn {}",
            s.messages,
            p.messages
        );
        assert!(s.replicated_pages <= p.replicated_pages);
    }
}

/// §9.2.4: on the cold remote pass, direct cache-coherent access beats
/// DSM replication; on the warm pass at cache-exceeding sizes the
/// trade-off reverses.
#[test]
fn memory_access_tradeoff() {
    const BYTES: u64 = 8 << 20; // exceeds the 4 MB L3 → the paper's regime
    let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
    let p_cold = memory_access(&mut pop, AccessScenario::RemoteAccessOrigin, BYTES).unwrap();
    let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let s_cold = memory_access(&mut stra, AccessScenario::RemoteAccessOrigin, BYTES).unwrap();
    assert!(p_cold.measured > s_cold.measured, "cold: Stramash must win");

    let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
    let p_warm = memory_access(&mut pop, AccessScenario::RemoteAccessOriginNoCold, BYTES).unwrap();
    let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let s_warm = memory_access(&mut stra, AccessScenario::RemoteAccessOriginNoCold, BYTES).unwrap();
    assert!(
        p_warm.measured < s_warm.measured,
        "warm at cache-exceeding size: replication must win (the §9.2.4 takeaway)"
    );
}

/// §9.2.5: DSM's overhead collapses from enormous at one cacheline to
/// ≈ 2× at full-page granularity.
#[test]
fn granularity_gap_collapses() {
    let ratio_at = |lines: u64| {
        let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
        let p = granularity(&mut pop, lines, 20).unwrap();
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let s = granularity(&mut stra, lines, 20).unwrap();
        p.cycles_per_round / s.cycles_per_round
    };
    let one = ratio_at(1);
    let page = ratio_at(64);
    assert!(one > 20.0, "one-line DSM overhead must be dramatic: {one:.0}x");
    assert!(page > 1.0 && page < 8.0, "full-page overhead must be small: {page:.1}x");
}

/// §9.2.6: the fused futex needs one IPI per cross-kernel wake; the
/// baseline pays a full message protocol per remote operation.
#[test]
fn futex_optimization_claim() {
    let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).unwrap();
    let p = futex_pingpong(&mut pop, 64).unwrap();
    let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let s = futex_pingpong(&mut stra, 64).unwrap();
    assert!(
        p.total.raw() as f64 / s.total.raw() as f64 > 3.0,
        "fused futex must be several times faster: {} vs {}",
        p.total,
        s.total
    );
    // And the per-loop cost stays linear for both.
    let mut stra2 = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let s2 = futex_pingpong(&mut stra2, 128).unwrap();
    let growth = s2.total.raw() as f64 / s.total.raw() as f64;
    assert!((1.6..2.4).contains(&growth), "futex cost must scale linearly, got {growth:.2}");
}

/// §3/§6.5: the platform's cross-ISA locking is sound because both
/// kernels use CAS under a common TSO model.
#[test]
fn cross_isa_locking_soundness() {
    let sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let x86 = &sys.base().kernels[0];
    let arm = &sys.base().kernels[1];
    assert!(stramash_repro::isa::atomic::cross_isa_atomics_sound(&x86.atomics, &arm.atomics));
    assert!(stramash_repro::isa::consistency::models_compatible(
        &x86.consistency,
        &arm.consistency
    ));
    assert!(x86.namespaces.is_fused_with(&arm.namespaces), "fused namespaces (§6.6)");
}
