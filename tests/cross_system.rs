//! Cross-crate integration: the three OS designs over the shared
//! substrate must compute identical results while exhibiting their
//! characteristic costs.

use stramash_repro::kernel::addr::PAGE_SIZE;
use stramash_repro::kernel::system::OsSystem;
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;
use stramash_repro::workloads::npb::{run_npb, Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// Every NPB kernel computes the same checksum on every OS design and
/// hardware model — OS policy must never change application results.
#[test]
fn npb_results_identical_across_designs_and_models() {
    for kind in NpbKind::EXTENDED {
        let mut reference = None;
        for sys_kind in SystemKind::ALL {
            for model in HardwareModel::ALL {
                // TCP behaves identically across models; run it once.
                if sys_kind == SystemKind::PopcornTcp && model != HardwareModel::Shared {
                    continue;
                }
                let mut sys = TargetSystem::build(sys_kind, model).unwrap();
                let pid = sys.spawn(DomainId::X86).unwrap();
                let out =
                    run_npb(kind, &mut sys, pid, Class::Tiny, sys_kind.migrates()).unwrap();
                assert!(out.verified, "{kind} on {sys_kind}/{model} failed verification");
                let chk = *reference.get_or_insert(out.checksum);
                assert_eq!(
                    out.checksum, chk,
                    "{kind} on {sys_kind}/{model} computed a different result"
                );
            }
        }
    }
}

/// Writes made on one kernel are visible on the other under every
/// design — through DSM on Popcorn, through coherent memory on Stramash.
#[test]
fn cross_kernel_write_visibility() {
    for kind in [SystemKind::PopcornShm, SystemKind::PopcornTcp, SystemKind::Stramash] {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let buf = sys.mmap(pid, 128 << 10, VmaProt::rw()).unwrap();
        for i in 0..32u64 {
            sys.store_u64(pid, buf.offset(i * PAGE_SIZE / 2), i ^ 0xabcd).unwrap();
        }
        sys.migrate(pid, DomainId::ARM).unwrap();
        for i in 0..32u64 {
            assert_eq!(
                sys.load_u64(pid, buf.offset(i * PAGE_SIZE / 2)).unwrap(),
                i ^ 0xabcd,
                "{kind:?}: remote kernel saw stale data"
            );
        }
        // And the reverse direction.
        for i in 0..32u64 {
            sys.store_u64(pid, buf.offset(i * PAGE_SIZE / 2), i + 1000).unwrap();
        }
        sys.migrate(pid, DomainId::X86).unwrap();
        for i in 0..32u64 {
            assert_eq!(sys.load_u64(pid, buf.offset(i * PAGE_SIZE / 2)).unwrap(), i + 1000);
        }
    }
}

/// Stramash's fused fault path sends no messages once the origin chain
/// exists; Popcorn's DSM messages scale with pages touched.
#[test]
fn message_scaling_contrast() {
    let pages = 32u64;
    let count_messages = |kind: SystemKind| {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let buf = sys.mmap(pid, pages * PAGE_SIZE, VmaProt::rw()).unwrap();
        // Origin warms every page (chains + data).
        for p in 0..pages {
            sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
        }
        sys.migrate(pid, DomainId::ARM).unwrap();
        let before = sys.message_total();
        for p in 0..pages {
            sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p * 2).unwrap();
        }
        sys.message_total() - before
    };
    let popcorn = count_messages(SystemKind::PopcornShm);
    let stramash = count_messages(SystemKind::Stramash);
    assert_eq!(stramash, 0, "fused remote faults must be message-free");
    assert!(popcorn >= pages, "DSM must message per page, got {popcorn}");
}

/// The runtime accounting is conserved: per-domain runtimes are
/// non-decreasing and the total equals their sum.
#[test]
fn runtime_accounting_is_consistent() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
    let mut last = Cycles::ZERO;
    for step in 0..16u64 {
        sys.store_u64(pid, buf.offset(step * 8), step).unwrap();
        if step == 8 {
            sys.migrate(pid, DomainId::ARM).unwrap();
        }
        let now = sys.runtime();
        assert!(now >= last, "runtime must be monotone");
        last = now;
    }
    let base = sys.base();
    let by_domain: u64 =
        DomainId::ALL.iter().map(|&d| base.timebase.clock(d).cycles().raw()).sum();
    assert_eq!(by_domain, sys.runtime().raw(), "total = x86 runtime + Arm runtime");
}

/// The artifact-style statistics report is populated after a run.
#[test]
fn stats_report_matches_artifact_format() {
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    run_npb(NpbKind::Is, &mut sys, pid, Class::Tiny, true).unwrap();
    sys.base_mut().sync_runtime_stats();
    let report = sys.base().mem.stats(DomainId::X86).report("x86");
    for field in [
        "L1 Cache Hit Rate:",
        "L3 Cache Hit Rate:",
        "IPI:",
        "Local Memory Hits:",
        "Remote Memory Hits:",
        "Remote Shared Memory Hits:",
        "Number of Instructions:",
        "Runtime:",
    ] {
        assert!(report.contains(field), "missing field {field} in:\n{report}");
    }
}

/// Process teardown under Stramash frees each frame exactly once, on
/// the kernel that allocated it (§6.4's recycling discipline).
#[test]
fn stramash_exit_frees_every_frame_once() {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut sys = stramash_repro::fused::StramashSystem::new(cfg).unwrap();
    let pid = sys.spawn(DomainId::X86).unwrap();
    let buf = sys.mmap(pid, 32 * PAGE_SIZE, VmaProt::rw()).unwrap();
    for p in 0..16u64 {
        sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
    }
    sys.migrate(pid, DomainId::ARM).unwrap();
    for p in 16..32u64 {
        sys.store_u64(pid, buf.offset(p * PAGE_SIZE), p).unwrap();
    }
    let x86_before = sys.base().kernels[0].frames.allocated_frames();
    let arm_before = sys.base().kernels[1].frames.allocated_frames();
    let freed = sys.exit(pid).unwrap();
    assert_eq!(freed.iter().sum::<u64>(), 32, "each user page freed exactly once");
    assert!(freed[0] >= 16, "origin frees its own allocations");
    assert!(freed[1] >= 1, "remote frees its own allocations");
    let x86_after = sys.base().kernels[0].frames.allocated_frames();
    let arm_after = sys.base().kernels[1].frames.allocated_frames();
    assert_eq!(x86_before - x86_after, freed[0]);
    assert_eq!(arm_before - arm_after, freed[1]);
}
