//! KV serving scenario — determinism, golden fingerprints, and
//! saturation behaviour.
//!
//! The open-loop serving scenario (`workloads::serve`) layers a virtual
//! request timeline over the per-domain cycle clocks; like every other
//! simulated result in this repo it must be **exactly** reproducible:
//! the same seed yields a byte-identical schedule, and the full run —
//! service times, latencies, the folded run fingerprint — is pinned per
//! [`SystemKind`] as a golden record. The saturation smoke checks the
//! open-loop model actually behaves like one: past the service capacity
//! the achieved throughput caps while tail latency explodes.
//!
//! To regenerate the goldens after an *intentional* timing-model
//! change: `cargo test --test kv_serving -- --ignored --nocapture
//! print_serve_goldens`

use stramash_repro::prelude::*;
use stramash_repro::workloads::serve::{
    generate_schedule, run_serve, schedule_fingerprint, ServeConfig,
};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

/// A small but multi-shard, multi-connection configuration: fast enough
/// for tier-1, big enough to exercise window flow control and both ISA
/// domains.
fn cfg() -> ServeConfig {
    ServeConfig {
        workers: 4,
        connections: 16,
        window: 4,
        requests: 400,
        offered_load: 10.0,
        keyspace: 200,
        ..ServeConfig::default()
    }
}

#[test]
fn same_seed_schedules_are_byte_identical() {
    let a = generate_schedule(&cfg());
    let b = generate_schedule(&cfg());
    assert_eq!(a, b, "same seed must reproduce the schedule byte for byte");
    assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));

    let other = ServeConfig { seed: 0xdead_beef, ..cfg() };
    let c = generate_schedule(&other);
    assert_ne!(
        schedule_fingerprint(&a),
        schedule_fingerprint(&c),
        "different seeds must not collide on the fingerprint"
    );
}

/// The pinned golden run fingerprints for [`cfg`] on
/// `HardwareModel::Shared` — (schedule fingerprint, run fingerprint,
/// p50, p99) per system kind. Any timing-model drift in the serving
/// path fails here.
fn golden(kind: SystemKind) -> (u64, u64, u64, u64) {
    let sched = 0xbeb0_48dd_bdaf_3d65;
    match kind {
        SystemKind::Vanilla => (sched, 0xbd9b_3bf3_2a88_026d, 16383, 16383),
        SystemKind::PopcornTcp => (sched, 0x31f5_8be8_4c76_ccca, 262143, 326745),
        SystemKind::PopcornShm => (sched, 0xf46c_758d_3cb1_5e32, 16383, 22342),
        SystemKind::Stramash => (sched, 0xd410_8128_56f6_3ff0, 16383, 22342),
    }
}

#[test]
fn serve_runs_match_recorded_goldens() {
    for kind in SystemKind::ALL {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let r = run_serve(&mut sys, &cfg()).unwrap();
        let (sched, run, p50, p99) = golden(kind);
        assert_eq!(
            (r.schedule_fingerprint, r.fingerprint, r.p50(), r.p99()),
            (sched, run, p50, p99),
            "{kind}: serving run drifted from the golden record"
        );
        assert_eq!(r.completed, cfg().requests, "{kind}: every request must complete");
        assert!(sys.audit().is_empty(), "{kind}: auditor violations: {:?}", sys.audit());
    }
}

#[test]
fn serve_is_deterministic_across_reruns() {
    for kind in [SystemKind::Stramash, SystemKind::PopcornTcp] {
        let mut a = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let ra = run_serve(&mut a, &cfg()).unwrap();
        let mut b = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let rb = run_serve(&mut b, &cfg()).unwrap();
        assert_eq!(ra.fingerprint, rb.fingerprint, "{kind}: rerun diverged");
        assert_eq!(ra.makespan, rb.makespan, "{kind}: makespan diverged");
        assert_eq!(ra.window_stalls, rb.window_stalls, "{kind}: stalls diverged");
    }
}

#[test]
fn overload_saturates_throughput_and_tails() {
    // Open-loop arrivals do not slow down when the server falls behind:
    // past capacity the achieved throughput must cap out below the
    // offered load while p99 latency explodes with queueing delay.
    let light_cfg = ServeConfig { offered_load: 1.0, ..cfg() };
    let heavy_cfg = ServeConfig { offered_load: 2000.0, ..cfg() };
    let mut sys = TargetSystem::build(SystemKind::PopcornTcp, HardwareModel::Shared).unwrap();
    let light = run_serve(&mut sys, &light_cfg).unwrap();
    let mut sys = TargetSystem::build(SystemKind::PopcornTcp, HardwareModel::Shared).unwrap();
    let heavy = run_serve(&mut sys, &heavy_cfg).unwrap();

    assert!(
        (light.throughput - light.offered_load).abs() / light.offered_load < 0.25,
        "under light load achieved ({:.2}) must track offered ({:.2})",
        light.throughput,
        light.offered_load
    );
    assert!(
        heavy.throughput < 0.5 * heavy.offered_load,
        "overload must saturate: achieved {:.2} vs offered {:.2}",
        heavy.throughput,
        heavy.offered_load
    );
    assert!(
        heavy.p99() > 10 * light.p99(),
        "overload p99 ({}) must dwarf light-load p99 ({})",
        heavy.p99(),
        light.p99()
    );
    assert!(heavy.window_stalls > 0, "overload must hit the stream window");
}

/// Regeneration helper — prints current fingerprints in the shape of
/// [`golden`].
#[test]
#[ignore = "golden regeneration helper, run manually"]
fn print_serve_goldens() {
    for kind in SystemKind::ALL {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).unwrap();
        let r = run_serve(&mut sys, &cfg()).unwrap();
        println!(
            "SystemKind::{kind:?} => ({:#018x}, {:#018x}, {}, {}),",
            r.schedule_fingerprint,
            r.fingerprint,
            r.p50(),
            r.p99()
        );
    }
}
