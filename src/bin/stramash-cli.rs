//! Command-line front end for the Stramash reproduction — the
//! equivalent of the artifact's run scripts: boot a platform, run a
//! workload, print the artifact-style report.
//!
//! ```text
//! stramash-cli npb is --system stramash --model shared --class tiny
//! stramash-cli sweep cg --class tiny
//! stramash-cli kv get --requests 200
//! stramash-cli ipi
//! stramash-cli trace is --system stramash --json /tmp/trace.json
//! ```

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::chaos::ChaosSchedule;
use stramash_repro::sim::ipi::{IpiCharacterization, IpiTopology};
use stramash_repro::sim::rng::SimRng;
use stramash_repro::workloads::chaos::chaos_sweep;
use stramash_repro::workloads::driver::{run_benchmark, Configuration};
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{Class, NpbKind};
use stramash_repro::workloads::recovery::{
    run_is_recovered, run_kv_recovered, RecoveryConfig, RecoveryPolicy,
};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  stramash-cli npb <is|cg|mg|ft|ep> [--system <vanilla|popcorn-tcp|popcorn-shm|stramash>]
                                    [--model <separated|shared|fully-shared>]
                                    [--class <tiny|small|large>] [--report]
  stramash-cli sweep <is|cg|mg|ft|ep> [--class <tiny|small|large>] [--parallel]
  stramash-cli kv <get|set|lpush|rpush|lpop|rpop|sadd|mset> [--requests N]
  stramash-cli ipi
  stramash-cli trace <is|cg|mg|ft|ep> [--system <...>] [--model <...>] [--class <...>]
                                      [--json <path>]
  stramash-cli run <is|kv> [--system <...>] [--model <...>] [--class <...>] [--requests N]
                           [--seed N] [--stage S] [--policy <restart|degrade>]
                           [--checkpoint <path>]
  stramash-cli pair [--system <...>] [--model <...>] [--elems N] [--phases N]
                    [--parallel] [--no-heartbeat]
  stramash-cli serve [--model <...>] [--workers N] [--connections N] [--window N]
                     [--requests N] [--loads a,b,c] [--read-pct P] [--keyspace K]
                     [--payload B] [--seed N]
  stramash-cli chaos [--seed N] [--stages K] [--inject-regression]"
    );
    ExitCode::FAILURE
}

fn fail(what: &str, e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {what}: {e}");
    ExitCode::FAILURE
}

fn parse_kind(s: &str) -> Option<NpbKind> {
    match s {
        "is" => Some(NpbKind::Is),
        "cg" => Some(NpbKind::Cg),
        "mg" => Some(NpbKind::Mg),
        "ft" => Some(NpbKind::Ft),
        "ep" => Some(NpbKind::Ep),
        _ => None,
    }
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s {
        "vanilla" => Some(SystemKind::Vanilla),
        "popcorn-tcp" => Some(SystemKind::PopcornTcp),
        "popcorn-shm" => Some(SystemKind::PopcornShm),
        "stramash" => Some(SystemKind::Stramash),
        _ => None,
    }
}

fn parse_model(s: &str) -> Option<HardwareModel> {
    match s {
        "separated" => Some(HardwareModel::Separated),
        "shared" => Some(HardwareModel::Shared),
        "fully-shared" => Some(HardwareModel::FullyShared),
        _ => None,
    }
}

/// A tiny flag parser: `--key value` pairs after the positionals.
fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn cmd_npb(args: &[String]) -> ExitCode {
    let Some(kind) = args.first().and_then(|a| parse_kind(a)) else {
        return usage();
    };
    let system = match flag(args, "--system").as_deref() {
        Some(s) => match parse_system(s) {
            Some(k) => k,
            None => return usage(),
        },
        None => SystemKind::Stramash,
    };
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let want_report = args.iter().any(|a| a == "--report");

    // Run through the driver for the metrics, or manually for --report
    // (which needs the live system to print the stats blocks).
    let cfg = Configuration { kind: system, model };
    if want_report {
        let mut sys = TargetSystem::build(system, model).expect("boot");
        let pid = sys.spawn(DomainId::X86).expect("spawn");
        let out = stramash_repro::workloads::npb::run_npb(
            kind,
            &mut sys,
            pid,
            class,
            system.migrates(),
        )
        .expect("run");
        sys.base_mut().sync_runtime_stats();
        println!("{kind} on {} ({model}) — verified: {}\n", cfg.label(), out.verified);
        for d in DomainId::ALL {
            println!("{}", sys.base().mem.stats(d).report(&d.to_string()));
        }
        println!("perf+icount phases:");
        print!("{}", sys.base().perf.report());
        return ExitCode::SUCCESS;
    }
    let report = run_benchmark(cfg, kind, class).expect("run");
    println!(
        "{kind} on {}: runtime {} cycles, {} messages, {} replicated pages, verified {}",
        cfg.label(),
        report.runtime.raw(),
        report.messages,
        report.replicated_pages,
        report.outcome.verified
    );
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    use stramash_repro::bench::{host_cores, parallel_map_nested};
    use stramash_repro::sim::WideReplay;
    use stramash_repro::workloads::driver::run_benchmark_with_policy;

    let Some(kind) = args.first().and_then(|a| parse_kind(a)) else {
        return usage();
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let parallel = args.iter().any(|a| a == "--parallel");
    let configs = Configuration::figure9_set();
    let reports: Vec<_> = if parallel {
        // Nested parallelism: configs fan out across the sweep pool
        // (STRAMASH_SWEEP_WORKERS) while each config runs with the inner
        // epoch policy from the deterministic core-budget split — wide
        // boundary replay only on cores the fan-out left spare. Reports
        // are identical to the serial sweep's, in the same order.
        let (reports, workers, wide) = parallel_map_nested(configs.clone(), |c, policy| {
            run_benchmark_with_policy(c, kind, class, Some(policy)).expect("run")
        });
        println!(
            "nested sweep: {workers} worker(s) × {} inner replay on {} host core(s)",
            if wide == WideReplay::Force { "wide" } else { "serial" },
            host_cores()
        );
        reports
    } else {
        configs.iter().map(|&c| run_benchmark(c, kind, class).expect("run")).collect()
    };
    let mut baseline = None;
    for report in &reports {
        let base = *baseline.get_or_insert(report.runtime);
        println!(
            "{:<22} {:>14} cycles  {:>6.3}x vanilla  msgs {:>6}  repl {:>5}",
            report.config.label(),
            report.runtime.raw(),
            report.normalized_to(base),
            report.messages,
            report.replicated_pages
        );
    }
    ExitCode::SUCCESS
}

fn cmd_kv(args: &[String]) -> ExitCode {
    let Some(op) = args.first().and_then(|a| KvOp::ALL.iter().find(|o| o.to_string() == *a)) else {
        return usage();
    };
    let requests: u64 =
        flag(args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(200);
    for kind in [SystemKind::PopcornTcp, SystemKind::PopcornShm, SystemKind::Stramash] {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).expect("boot");
        let r = run_kv(&mut sys, *op, requests, 1024).expect("run");
        println!("{kind:<12} {op}: {:>10.0} cycles/request", r.per_request);
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    use stramash_repro::sim::trace::{
        chrome_trace_json, reconstruct_domain_stats, render_phase_report, shared_tracer,
    };
    let Some(kind) = args.first().and_then(|a| parse_kind(a)) else {
        return usage();
    };
    let system = match flag(args, "--system").as_deref() {
        Some(s) => match parse_system(s) {
            Some(k) => k,
            None => return usage(),
        },
        None => SystemKind::Stramash,
    };
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let mut sys = TargetSystem::build(system, model).expect("boot");
    let tracer = shared_tracer(1 << 20);
    sys.install_tracer(tracer.clone());
    let pid = sys.spawn(DomainId::X86).expect("spawn");
    let out =
        stramash_repro::workloads::npb::run_npb(kind, &mut sys, pid, class, system.migrates())
            .expect("run");
    sys.base_mut().sync_runtime_stats();

    let t = tracer.borrow();
    let events = t.events();
    println!("{kind} on {system} ({model}) — verified: {}", out.verified);
    println!("{} events recorded, {} dropped by the bounded ring\n", t.recorded(), t.dropped());
    print!("{}", render_phase_report(&events));

    // The report's per-domain totals, rebuilt purely from the stream.
    println!("\nper-domain stats reconstructed from the event stream:");
    let rebuilt = reconstruct_domain_stats(&events);
    for d in DomainId::ALL {
        println!("{}", rebuilt[d.index()].report(&d.to_string()));
    }
    println!("metrics:");
    print!("{}", t.metrics().render());
    if let Some(path) = flag(args, "--json") {
        std::fs::write(&path, chrome_trace_json(&events)).expect("write trace json");
        println!("chrome trace written to {path} (open via chrome://tracing or Perfetto)");
    }
    ExitCode::SUCCESS
}

fn cmd_ipi() -> ExitCode {
    for (name, topo, freq) in [
        ("big_Arm", IpiTopology::big_arm(), 2_000_000_000u64),
        ("big_x86", IpiTopology::big_x86(), 2_100_000_000),
    ] {
        let mut rng = SimRng::new(7);
        let run = IpiCharacterization::run(topo, 8, &mut rng);
        println!(
            "{name}: all-pairs avg {:.0} ns  ->  {} simulator cycles",
            run.average_ns(),
            run.average_cycles(freq).raw()
        );
    }
    ExitCode::SUCCESS
}

/// `stramash-cli run`: the supervised, crash-recoverable stepped runs.
/// `--seed`/`--stage` replay a chaos schedule's fault plan; a
/// `--checkpoint` artifact that already exists fast-forwards the
/// machine before the run, and the finished machine state is written
/// back to the same path.
fn cmd_run(args: &[String]) -> ExitCode {
    let Some(workload) = args.first().map(String::as_str) else {
        return usage();
    };
    if workload != "is" && workload != "kv" {
        return usage();
    }
    let system = match flag(args, "--system").as_deref() {
        Some(s) => match parse_system(s) {
            Some(k) => k,
            None => return usage(),
        },
        None => SystemKind::Stramash,
    };
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let requests: u64 = flag(args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(200);
    let seed: Option<u64> = flag(args, "--seed").and_then(|v| {
        v.parse().ok().or_else(|| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok())
    });
    let stage: u32 = flag(args, "--stage").and_then(|v| v.parse().ok()).unwrap_or(3);
    let policy = match flag(args, "--policy").as_deref() {
        Some("degrade") => RecoveryPolicy::Degrade,
        Some("restart") | None => RecoveryPolicy::RestartFromCheckpoint,
        Some(_) => return usage(),
    };
    let ckpt_path = flag(args, "--checkpoint");

    let mut sys = match TargetSystem::build(system, model) {
        Ok(s) => s,
        Err(e) => return fail("boot", e),
    };
    if let Some(seed) = seed {
        let sched = ChaosSchedule::generate(seed, stage);
        println!("replaying fault schedule: {}", sched.describe());
        sys.install_fault_plan(sched.plan(), seed);
    }
    if let Some(path) = &ckpt_path {
        if std::path::Path::new(path).exists() {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => return fail("read checkpoint", e),
            };
            if let Err(e) = sys.restore(&bytes) {
                eprintln!(
                    "hint: a checkpoint taken under a fault seed needs the same --seed to restore"
                );
                return fail("restore checkpoint", e);
            }
            println!("fast-forwarded from {path} ({} bytes)", bytes.len());
        }
    }
    let rc = RecoveryConfig { policy, ..RecoveryConfig::default() };
    let (final_sys, crashes, restarts, degraded) = if workload == "is" {
        match run_is_recovered(sys, class, &rc) {
            Ok(out) => {
                println!(
                    "IS on {system} ({model}): verified {}, checksum {}, {} procedures",
                    out.result.verified, out.result.checksum, out.result.procedures
                );
                (out.sys, out.crashes, out.restarts, out.degraded)
            }
            Err(e) => return fail("run", e),
        }
    } else {
        match run_kv_recovered(sys, KvOp::Set, requests, 64, &rc) {
            Ok(out) => {
                println!(
                    "KV set on {system} ({model}): {} requests, checksum {:#x}, {:.0} cycles/req",
                    out.result.requests, out.result.checksum, out.result.per_request
                );
                (out.sys, out.crashes, out.restarts, out.degraded)
            }
            Err(e) => return fail("run", e),
        }
    };
    println!(
        "recovery: {crashes} watchdog death(s), {restarts} restart(s){}",
        degraded.map_or(String::new(), |d| format!(", degraded after losing {d}"))
    );
    let violations = final_sys.audit();
    if violations.is_empty() {
        println!("invariant audit: clean");
    } else {
        for v in &violations {
            eprintln!("invariant violation: {v}");
        }
        return ExitCode::FAILURE;
    }
    if let Some(path) = &ckpt_path {
        let artifact = final_sys.checkpoint();
        let len = artifact.len();
        match std::fs::write(path, artifact) {
            Ok(()) => println!("checkpoint written to {path} ({len} bytes)"),
            Err(e) => return fail("write checkpoint", e),
        }
    }
    ExitCode::SUCCESS
}

/// `stramash-cli pair`: the two-thread epoch workload. `--parallel`
/// enables deferred-epoch execution (same simulated cycles, fewer
/// host seconds); the printed fingerprint lets you diff the two modes.
fn cmd_pair(args: &[String]) -> ExitCode {
    use stramash_repro::workloads::pair::{run_pair, PairConfig};
    let system = match flag(args, "--system").as_deref() {
        Some(s) => match parse_system(s) {
            Some(k) => k,
            None => return usage(),
        },
        None => SystemKind::Stramash,
    };
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let cfg = PairConfig {
        elems: flag(args, "--elems").and_then(|v| v.parse().ok()).unwrap_or(6_000),
        phases: flag(args, "--phases").and_then(|v| v.parse().ok()).unwrap_or(24),
        heartbeat: !args.iter().any(|a| a == "--no-heartbeat"),
    };
    let parallel = args.iter().any(|a| a == "--parallel");
    let mut sys = match TargetSystem::build(system, model) {
        Ok(s) => s,
        Err(e) => return fail("boot", e),
    };
    if parallel {
        let mut policy = sys.base().epoch_policy();
        policy.enabled = true;
        // --parallel is explicit intent: run the two-thread replay
        // even on a host whose core count would auto-decline it.
        policy.wide = stramash_repro::sim::WideReplay::Force;
        sys.base_mut().set_epoch_policy(policy);
    }
    let wall = std::time::Instant::now();
    let out = match run_pair(&mut sys, cfg) {
        Ok(o) => o,
        Err(e) => return fail("run", e),
    };
    let wall = wall.elapsed().as_secs_f64();
    let base = sys.base();
    println!(
        "pair on {system} ({model}): {} phases, checksum {:.6}, {} msgs",
        out.phases,
        out.checksum,
        base.msg.counters().total()
    );
    println!(
        "clocks: x86 {} cycles, arm {} cycles (identical in serial and parallel modes)",
        base.timebase.clock(DomainId::X86).cycles().raw(),
        base.timebase.clock(DomainId::ARM).cycles().raw()
    );
    println!(
        "epochs: {} parallel boundary replays, {} deferred entries, {wall:.3}s host wall-clock{}",
        out.parallel_epochs,
        out.epoch_entries,
        if parallel { " (epoch-parallel)" } else { " (serial)" }
    );
    ExitCode::SUCCESS
}

/// `stramash-cli serve`: the production-scale serving scenario —
/// throughput-vs-offered-load and p50/p99-vs-load curves for every
/// system kind, from one deterministic seeded schedule per load point.
fn cmd_serve(args: &[String]) -> ExitCode {
    use stramash_repro::workloads::serve::{run_serve_curve, ServeConfig};
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let mut cfg = ServeConfig::default();
    if let Some(v) = flag(args, "--workers").and_then(|v| v.parse().ok()) {
        cfg.workers = v;
    }
    if let Some(v) = flag(args, "--connections").and_then(|v| v.parse().ok()) {
        cfg.connections = v;
    }
    if let Some(v) = flag(args, "--window").and_then(|v| v.parse().ok()) {
        cfg.window = v;
    }
    if let Some(v) = flag(args, "--requests").and_then(|v| v.parse().ok()) {
        cfg.requests = v;
    }
    if let Some(v) = flag(args, "--read-pct").and_then(|v| v.parse().ok()) {
        cfg.read_pct = v;
    }
    if let Some(v) = flag(args, "--keyspace").and_then(|v| v.parse().ok()) {
        cfg.keyspace = v;
    }
    if let Some(v) = flag(args, "--payload").and_then(|v| v.parse().ok()) {
        cfg.payload_len = v;
    }
    if let Some(v) = flag(args, "--seed").and_then(|v| {
        v.parse().ok().or_else(|| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok())
    }) {
        cfg.seed = v;
    }
    let loads: Vec<f64> = flag(args, "--loads")
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2.0, 10.0, 40.0]);
    if loads.is_empty() {
        return usage();
    }

    println!(
        "serving: {} workers × {} connections (window {}), {} requests/point, \
         {}% reads over {} Zipf keys, seed {:#x} ({model})\n",
        cfg.workers, cfg.connections, cfg.window, cfg.requests, cfg.read_pct, cfg.keyspace,
        cfg.seed
    );
    println!(
        "{:<12} {:>9} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "system", "offered", "achieved", "p50", "p99", "queue-p99", "stalls"
    );
    for kind in
        [SystemKind::Stramash, SystemKind::PopcornShm, SystemKind::PopcornTcp, SystemKind::Vanilla]
    {
        let curve = match run_serve_curve(kind, model, &cfg, &loads) {
            Ok(c) => c,
            Err(e) => return fail("serve", e),
        };
        for r in &curve {
            println!(
                "{:<12} {:>9.1} {:>10.2} {:>12} {:>12} {:>12} {:>8}",
                kind.to_string(),
                r.offered_load,
                r.throughput,
                r.p50(),
                r.p99(),
                r.queue.percentile(99.0),
                r.window_stalls
            );
        }
        if let Some(last) = curve.last() {
            println!(
                "  └ schedule {:#018x}  run {:#018x}  (seed-replayable)\n",
                last.schedule_fingerprint, last.fingerprint
            );
        }
    }
    println!("loads are requests per million cycles; latencies are simulated cycles (log₂-bucket p50/p99)");
    ExitCode::SUCCESS
}

/// `stramash-cli chaos`: the escalating seeded sweep with shrinking
/// reproducers.
fn cmd_chaos(args: &[String]) -> ExitCode {
    let seed: u64 = flag(args, "--seed")
        .and_then(|v| {
            v.parse().ok().or_else(|| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok())
        })
        .unwrap_or(0x5eed);
    let stages: u32 = flag(args, "--stages").and_then(|v| v.parse().ok()).unwrap_or(4);
    let inject = args.iter().any(|a| a == "--inject-regression");
    if inject {
        println!("injecting a seeded recovery regression (degrade-where-restart-required)");
    }
    let report = match chaos_sweep(seed, stages, inject) {
        Ok(r) => r,
        Err(e) => return fail("chaos baseline", e),
    };
    for cell in &report.cells {
        println!(
            "stage {} {:<12} {:>2} event(s)  crashes {} restarts {}  {}",
            cell.stage,
            cell.kind.to_string(),
            cell.schedule.events.len(),
            cell.crashes,
            cell.restarts,
            cell.failure.as_deref().unwrap_or("ok")
        );
    }
    if let Some(rep) = &report.reproducer {
        println!("\nfailure on {}: {}", rep.kind, rep.failure);
        println!(
            "minimal reproducer after shrinking: {}",
            rep.schedule.describe()
        );
        println!(
            "replay: stramash-cli chaos --seed {:#x} --stages {stages}{}",
            seed,
            if inject { " --inject-regression" } else { "" }
        );
        return if inject { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    println!(
        "\nchaos sweep green: {} cell(s), no auditor violations, no fingerprint drift",
        report.cells.len()
    );
    if inject {
        eprintln!("error: the injected regression was not found");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("npb") => cmd_npb(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("kv") => cmd_kv(&args[1..]),
        Some("ipi") => cmd_ipi(),
        Some("trace") => cmd_trace(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("pair") => cmd_pair(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kinds_systems_models() {
        assert_eq!(parse_kind("is"), Some(NpbKind::Is));
        assert_eq!(parse_kind("ep"), Some(NpbKind::Ep));
        assert_eq!(parse_kind("nope"), None);
        assert_eq!(parse_system("popcorn-shm"), Some(SystemKind::PopcornShm));
        assert_eq!(parse_system("stramash"), Some(SystemKind::Stramash));
        assert_eq!(parse_system("bogus"), None);
        assert_eq!(parse_model("fully-shared"), Some(HardwareModel::FullyShared));
        assert_eq!(parse_model("separated"), Some(HardwareModel::Separated));
        assert_eq!(parse_model("x"), None);
    }

    #[test]
    fn flag_extraction() {
        let args: Vec<String> =
            ["is", "--system", "stramash", "--class", "small"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag(&args, "--system").as_deref(), Some("stramash"));
        assert_eq!(flag(&args, "--class").as_deref(), Some("small"));
        assert_eq!(flag(&args, "--model"), None);
        // A trailing flag without a value yields None.
        let args: Vec<String> = ["is", "--system"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag(&args, "--system"), None);
    }
}
