//! Command-line front end for the Stramash reproduction — the
//! equivalent of the artifact's run scripts: boot a platform, run a
//! workload, print the artifact-style report.
//!
//! ```text
//! stramash-cli npb is --system stramash --model shared --class tiny
//! stramash-cli sweep cg --class tiny
//! stramash-cli kv get --requests 200
//! stramash-cli ipi
//! stramash-cli trace is --system stramash --json /tmp/trace.json
//! ```

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::ipi::{IpiCharacterization, IpiTopology};
use stramash_repro::sim::rng::SimRng;
use stramash_repro::workloads::driver::{run_benchmark, Configuration};
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::npb::{Class, NpbKind};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  stramash-cli npb <is|cg|mg|ft|ep> [--system <vanilla|popcorn-tcp|popcorn-shm|stramash>]
                                    [--model <separated|shared|fully-shared>]
                                    [--class <tiny|small|large>] [--report]
  stramash-cli sweep <is|cg|mg|ft|ep> [--class <tiny|small|large>]
  stramash-cli kv <get|set|lpush|rpush|lpop|rpop|sadd|mset> [--requests N]
  stramash-cli ipi
  stramash-cli trace <is|cg|mg|ft|ep> [--system <...>] [--model <...>] [--class <...>]
                                      [--json <path>]"
    );
    ExitCode::FAILURE
}

fn parse_kind(s: &str) -> Option<NpbKind> {
    match s {
        "is" => Some(NpbKind::Is),
        "cg" => Some(NpbKind::Cg),
        "mg" => Some(NpbKind::Mg),
        "ft" => Some(NpbKind::Ft),
        "ep" => Some(NpbKind::Ep),
        _ => None,
    }
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s {
        "vanilla" => Some(SystemKind::Vanilla),
        "popcorn-tcp" => Some(SystemKind::PopcornTcp),
        "popcorn-shm" => Some(SystemKind::PopcornShm),
        "stramash" => Some(SystemKind::Stramash),
        _ => None,
    }
}

fn parse_model(s: &str) -> Option<HardwareModel> {
    match s {
        "separated" => Some(HardwareModel::Separated),
        "shared" => Some(HardwareModel::Shared),
        "fully-shared" => Some(HardwareModel::FullyShared),
        _ => None,
    }
}

/// A tiny flag parser: `--key value` pairs after the positionals.
fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn cmd_npb(args: &[String]) -> ExitCode {
    let Some(kind) = args.first().and_then(|a| parse_kind(a)) else {
        return usage();
    };
    let system = match flag(args, "--system").as_deref() {
        Some(s) => match parse_system(s) {
            Some(k) => k,
            None => return usage(),
        },
        None => SystemKind::Stramash,
    };
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let want_report = args.iter().any(|a| a == "--report");

    // Run through the driver for the metrics, or manually for --report
    // (which needs the live system to print the stats blocks).
    let cfg = Configuration { kind: system, model };
    if want_report {
        let mut sys = TargetSystem::build(system, model).expect("boot");
        let pid = sys.spawn(DomainId::X86).expect("spawn");
        let out = stramash_repro::workloads::npb::run_npb(
            kind,
            &mut sys,
            pid,
            class,
            system.migrates(),
        )
        .expect("run");
        sys.base_mut().sync_runtime_stats();
        println!("{kind} on {} ({model}) — verified: {}\n", cfg.label(), out.verified);
        for d in DomainId::ALL {
            println!("{}", sys.base().mem.stats(d).report(&d.to_string()));
        }
        println!("perf+icount phases:");
        print!("{}", sys.base().perf.report());
        return ExitCode::SUCCESS;
    }
    let report = run_benchmark(cfg, kind, class).expect("run");
    println!(
        "{kind} on {}: runtime {} cycles, {} messages, {} replicated pages, verified {}",
        cfg.label(),
        report.runtime.raw(),
        report.messages,
        report.replicated_pages,
        report.outcome.verified
    );
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let Some(kind) = args.first().and_then(|a| parse_kind(a)) else {
        return usage();
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let mut baseline = None;
    for config in Configuration::figure9_set() {
        let report = run_benchmark(config, kind, class).expect("run");
        let base = *baseline.get_or_insert(report.runtime);
        println!(
            "{:<22} {:>14} cycles  {:>6.3}x vanilla  msgs {:>6}  repl {:>5}",
            config.label(),
            report.runtime.raw(),
            report.normalized_to(base),
            report.messages,
            report.replicated_pages
        );
    }
    ExitCode::SUCCESS
}

fn cmd_kv(args: &[String]) -> ExitCode {
    let Some(op) = args.first().and_then(|a| KvOp::ALL.iter().find(|o| o.to_string() == *a)) else {
        return usage();
    };
    let requests: u64 =
        flag(args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(200);
    for kind in [SystemKind::PopcornTcp, SystemKind::PopcornShm, SystemKind::Stramash] {
        let mut sys = TargetSystem::build(kind, HardwareModel::Shared).expect("boot");
        let r = run_kv(&mut sys, *op, requests, 1024).expect("run");
        println!("{kind:<12} {op}: {:>10.0} cycles/request", r.per_request);
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    use stramash_repro::sim::trace::{
        chrome_trace_json, reconstruct_domain_stats, render_phase_report, shared_tracer,
    };
    let Some(kind) = args.first().and_then(|a| parse_kind(a)) else {
        return usage();
    };
    let system = match flag(args, "--system").as_deref() {
        Some(s) => match parse_system(s) {
            Some(k) => k,
            None => return usage(),
        },
        None => SystemKind::Stramash,
    };
    let model = match flag(args, "--model").as_deref() {
        Some(s) => match parse_model(s) {
            Some(m) => m,
            None => return usage(),
        },
        None => HardwareModel::Shared,
    };
    let class = match flag(args, "--class").as_deref() {
        Some("small") => Class::Small,
        Some("large") => Class::Large,
        _ => Class::Tiny,
    };
    let mut sys = TargetSystem::build(system, model).expect("boot");
    let tracer = shared_tracer(1 << 20);
    sys.install_tracer(tracer.clone());
    let pid = sys.spawn(DomainId::X86).expect("spawn");
    let out =
        stramash_repro::workloads::npb::run_npb(kind, &mut sys, pid, class, system.migrates())
            .expect("run");
    sys.base_mut().sync_runtime_stats();

    let t = tracer.borrow();
    let events = t.events();
    println!("{kind} on {system} ({model}) — verified: {}", out.verified);
    println!("{} events recorded, {} dropped by the bounded ring\n", t.recorded(), t.dropped());
    print!("{}", render_phase_report(&events));

    // The report's per-domain totals, rebuilt purely from the stream.
    println!("\nper-domain stats reconstructed from the event stream:");
    let rebuilt = reconstruct_domain_stats(&events);
    for d in DomainId::ALL {
        println!("{}", rebuilt[d.index()].report(&d.to_string()));
    }
    println!("metrics:");
    print!("{}", t.metrics().render());
    if let Some(path) = flag(args, "--json") {
        std::fs::write(&path, chrome_trace_json(&events)).expect("write trace json");
        println!("chrome trace written to {path} (open via chrome://tracing or Perfetto)");
    }
    ExitCode::SUCCESS
}

fn cmd_ipi() -> ExitCode {
    for (name, topo, freq) in [
        ("big_Arm", IpiTopology::big_arm(), 2_000_000_000u64),
        ("big_x86", IpiTopology::big_x86(), 2_100_000_000),
    ] {
        let mut rng = SimRng::new(7);
        let run = IpiCharacterization::run(topo, 8, &mut rng);
        println!(
            "{name}: all-pairs avg {:.0} ns  ->  {} simulator cycles",
            run.average_ns(),
            run.average_cycles(freq).raw()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("npb") => cmd_npb(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("kv") => cmd_kv(&args[1..]),
        Some("ipi") => cmd_ipi(),
        Some("trace") => cmd_trace(&args[1..]),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kinds_systems_models() {
        assert_eq!(parse_kind("is"), Some(NpbKind::Is));
        assert_eq!(parse_kind("ep"), Some(NpbKind::Ep));
        assert_eq!(parse_kind("nope"), None);
        assert_eq!(parse_system("popcorn-shm"), Some(SystemKind::PopcornShm));
        assert_eq!(parse_system("stramash"), Some(SystemKind::Stramash));
        assert_eq!(parse_system("bogus"), None);
        assert_eq!(parse_model("fully-shared"), Some(HardwareModel::FullyShared));
        assert_eq!(parse_model("separated"), Some(HardwareModel::Separated));
        assert_eq!(parse_model("x"), None);
    }

    #[test]
    fn flag_extraction() {
        let args: Vec<String> =
            ["is", "--system", "stramash", "--class", "small"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag(&args, "--system").as_deref(), Some("stramash"));
        assert_eq!(flag(&args, "--class").as_deref(), Some("small"));
        assert_eq!(flag(&args, "--model"), None);
        // A trailing flag without a value yields None.
        let args: Vec<String> = ["is", "--system"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag(&args, "--system"), None);
    }
}
