//! Umbrella crate for the Stramash fused-kernel OS reproduction.
//!
//! Re-exports every workspace crate and provides a [`prelude`] for the
//! examples, integration tests and benchmark harnesses.

#![warn(missing_docs)]

pub use popcorn_os as popcorn;
pub use stramash as fused;
pub use stramash_bench as bench;
pub use stramash_isa as isa;
pub use stramash_kernel as kernel;
pub use stramash_mem as mem;
pub use stramash_sim as sim;
pub use stramash_workloads as workloads;

/// Commonly used types for experiments.
pub mod prelude {
    pub use stramash_sim::{Cycles, DomainId, HardwareModel, SimConfig};
}
